"""Aggregation of campaign results into the paper's metrics.

Table I reports, per task group (Total / CMB / SEQ) and per criterion
(Eval2 / Eval1 / Eval0): the pass *ratio* and the mean number of passed
tasks, averaged over the repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..problems.model import CMB, SEQ
from .autoeval import EvalLevel
from .campaign import CampaignResult, TaskRun

GROUPS = ("Total", CMB, SEQ)
LEVELS = (EvalLevel.EVAL2, EvalLevel.EVAL1, EvalLevel.EVAL0)


def _in_group(run: TaskRun, group: str) -> bool:
    return group == "Total" or run.kind == group


@dataclass(frozen=True)
class CellStat:
    """One Table-I cell: mean pass ratio and mean pass count."""

    ratio: float
    mean_count: float
    group_size: int


def level_stat(result: CampaignResult, method: str, group: str,
               level: EvalLevel) -> CellStat:
    """Mean pass ratio/count over seeds for one method/group/level."""
    seeds = result.config.seeds
    counts = []
    group_size = 0
    for seed in seeds:
        runs = [run for run in result.of(method, seed)
                if _in_group(run, group)]
        group_size = max(group_size, len(runs))
        counts.append(sum(1 for run in runs if run.level >= level))
    if not seeds or group_size == 0:
        return CellStat(0.0, 0.0, 0)
    mean_count = sum(counts) / len(counts)
    return CellStat(mean_count / group_size, mean_count, group_size)


@dataclass(frozen=True)
class ContributionStat:
    """One Table-III row: CorrectBench vs AutoBench gain decomposition."""

    group: str
    correctbench: float   # mean Eval2-pass count
    autobench: float
    gain: float
    validator: float      # passes where the workflow took any action
    corrector: float      # passes whose final TB came from the corrector


def contribution_stats(result: CampaignResult) -> list[ContributionStat]:
    from .campaign import METHOD_AUTOBENCH, METHOD_CORRECTBENCH

    stats = []
    for group in GROUPS:
        cb = level_stat(result, METHOD_CORRECTBENCH, group,
                        EvalLevel.EVAL2)
        ab = level_stat(result, METHOD_AUTOBENCH, group, EvalLevel.EVAL2)
        seeds = result.config.seeds
        val_counts, corr_counts = [], []
        for seed in seeds:
            runs = [run for run in result.of(METHOD_CORRECTBENCH, seed)
                    if _in_group(run, group)
                    and run.level >= EvalLevel.EVAL2]
            val_counts.append(sum(1 for run in runs
                                  if run.took_any_action))
            corr_counts.append(sum(1 for run in runs
                                   if run.final_from_corrector))
        n = max(len(seeds), 1)
        stats.append(ContributionStat(
            group=group, correctbench=cb.mean_count,
            autobench=ab.mean_count,
            gain=cb.mean_count - ab.mean_count,
            validator=sum(val_counts) / n,
            corrector=sum(corr_counts) / n))
    return stats


def mean_usage(result: CampaignResult, method: str) -> tuple[float, float]:
    """Mean (input, output) tokens per task for one method."""
    runs = result.of_method(method)
    if not runs:
        return 0.0, 0.0
    input_tokens = sum(run.usage.input_tokens for run in runs) / len(runs)
    output_tokens = sum(run.usage.output_tokens for run in runs) / len(runs)
    return input_tokens, output_tokens


def level_breakdown(result: CampaignResult, method: str,
                    ) -> dict[str, float]:
    """Fractions per terminal band: Eval2 / Eval1 / Eval0 / Failed.

    The bands are disjoint (a TB's level), matching Fig. 7's stacks.
    """
    runs = result.of_method(method)
    if not runs:
        return {"Eval2": 0.0, "Eval1": 0.0, "Eval0": 0.0, "Failed": 0.0}
    total = len(runs)
    out = {}
    for level in (EvalLevel.EVAL2, EvalLevel.EVAL1, EvalLevel.EVAL0,
                  EvalLevel.FAILED):
        out[level.label] = sum(1 for run in runs
                               if run.level == level) / total
    return out
