"""Fault-injected recovery scenario packs, graded on recovery rate.

The paper evaluates CorrectBench on a *cooperative* substrate: the model
is unreliable, but the machinery around it — code-block extraction, the
validator's reports, the budget loop — behaves.  These packs stress the
robustness claim directly by injecting faults into that machinery and
grading whether Algorithm 1 still converges:

``corrupted-candidate``
    a client wrapper corrupts the corrector's stage-2 rewrites (the
    python block is syntax-poisoned) for the first correction round(s).
    Recovery requires the agent to survive shipping — or refusing — a
    broken candidate and converge once the corruption window closes.
``misleading-feedback``
    a :attr:`~repro.core.agent.CorrectBenchWorkflow.report_filter`
    rewrites failing validator reports for the first rounds: the wrong
    list is emptied (the failing scenarios are reported as passing) while
    the verdict stays negative.  The corrector works blind — no bug
    information — until honest reports resume.
``budget-exhausted``
    the workflow runs with starvation budgets (``ic_max=1, ir_max=2``)
    and is cold-restarted when it gives up, with generation attempts
    offset so a restart explores fresh candidates instead of replaying
    the identical deterministic failure.  Recovery means converging
    within the restart allowance despite never having the full budget.

Each pack is a registered :func:`~repro.eval.methods.campaign_method`,
so it runs through the standard campaign machinery and CLI
(``repro campaign --methods recovery-corrupted ...``).  A run is
**recovered** when the final testbench is both validator-accepted and
graded ``Eval2`` by AutoEval — self-reported success alone does not
count.  ``TaskRun.recovery_round`` carries the validation round the
accepting verdict landed on, feeding the recovered-by-round-k curves in
:func:`repro.eval.reporting.render_recovery_report`.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.agent import CorrectBenchWorkflow, WorkflowResult
from ..core.validator import ValidationReport
from ..llm.base import ChatRequest, ChatResponse, GenerationIntent
from .autoeval import EvalLevel
from .methods import MethodCall, TaskRun, campaign_method

FAULT_CORRUPTED = "corrupted-candidate"
FAULT_MISLEADING = "misleading-feedback"
FAULT_BUDGET = "budget-exhausted"

METHOD_RECOVERY_CORRUPTED = "recovery-corrupted"
METHOD_RECOVERY_MISLEADING = "recovery-misleading"
METHOD_RECOVERY_BUDGET = "recovery-budget"

#: The scenario packs in reporting order (``--methods`` accepts these).
RECOVERY_METHODS = (METHOD_RECOVERY_CORRUPTED,
                    METHOD_RECOVERY_MISLEADING,
                    METHOD_RECOVERY_BUDGET)

#: Method name -> fault class it injects.
FAULT_CLASSES = {
    METHOD_RECOVERY_CORRUPTED: FAULT_CORRUPTED,
    METHOD_RECOVERY_MISLEADING: FAULT_MISLEADING,
    METHOD_RECOVERY_BUDGET: FAULT_BUDGET,
}

#: Correction rounds whose stage-2 rewrites are corrupted.
CORRUPTED_FAULT_ROUNDS = 1
#: Validation rounds fed misleading (bug-info-free) reports.
MISLEADING_FAULT_ROUNDS = 2
#: Cold restarts granted after a starvation-budget give-up.
BUDGET_MAX_RESTARTS = 2
#: Attempt offset per restart: far past any in-run attempt index, so a
#: restart's deterministic fault draws differ from the failed run's.
BUDGET_ATTEMPT_STRIDE = 1000

_CORRUPTION_MARK = "!!! corrupted candidate (fault injection) !!!"


# ----------------------------------------------------------------------
# Fault-injecting client wrappers
# ----------------------------------------------------------------------
class _ClientWrapper:
    """Shared plumbing: forwards ``name`` and exposes the wrapped
    client's innermost backend as ``inner`` so ledger introspection
    (:func:`repro.core.trace.fault_fingerprint`) still reaches it."""

    def __init__(self, wrapped):
        self._wrapped = wrapped

    @property
    def name(self) -> str:
        return self._wrapped.name

    @property
    def inner(self):
        return getattr(self._wrapped, "inner", self._wrapped)


class CorruptingClient(_ClientWrapper):
    """Syntax-poisons stage-2 rewrite replies during the fault window.

    The corruption is inserted *inside* the python code block, so the
    hardened extraction still finds a block — the candidate parses as a
    reply but not as python, exactly the failure a flaky transport or a
    truncated completion produces.
    """

    def __init__(self, wrapped, fault_rounds: int = CORRUPTED_FAULT_ROUNDS):
        super().__init__(wrapped)
        self.fault_rounds = fault_rounds
        self.corrupted = 0

    def complete(self, request: ChatRequest) -> ChatResponse:
        response = self._wrapped.complete(request)
        intent = request.intent
        if (intent.kind == "correct_rewrite"
                and intent.payload.get("correction_round", 0)
                <= self.fault_rounds):
            marker = "```python\n"
            position = response.text.find(marker)
            if position >= 0:
                cut = position + len(marker)
                self.corrupted += 1
                return replace(response, text=(
                    response.text[:cut] + _CORRUPTION_MARK + "\n"
                    + response.text[cut:]))
        return response


class AttemptOffsetClient(_ClientWrapper):
    """Shifts generation ``attempt`` indexes by a fixed offset.

    The synthetic model's fault draws are a pure function of
    ``(task, attempt)``, so a cold restart replaying attempt 0 would
    fail identically forever.  Offsetting attempts gives each restart a
    fresh deterministic slice of the model's behaviour — the offline
    analogue of re-sampling a live model.
    """

    def __init__(self, wrapped, offset: int):
        super().__init__(wrapped)
        self.offset = offset

    def complete(self, request: ChatRequest) -> ChatResponse:
        if self.offset and "attempt" in request.intent.payload:
            payload = dict(request.intent.payload)
            payload["attempt"] += self.offset
            request = replace(request, intent=GenerationIntent(
                request.intent.kind, request.intent.task_id, payload))
        return self._wrapped.complete(request)


def misleading_report_filter(fault_rounds: int = MISLEADING_FAULT_ROUNDS):
    """A workflow ``report_filter`` hiding bug information early on.

    For the first ``fault_rounds`` failing reports, the wrong scenarios
    are reported as correct (the verdict stays negative, so the agent
    still acts — but blind).  Honest reports flow after the window.
    """
    def filter_report(report: ValidationReport,
                      round_index: int) -> ValidationReport:
        if round_index > fault_rounds or report.verdict:
            return report
        return ValidationReport(
            verdict=False, wrong=(),
            correct=tuple(sorted(set(report.correct) | set(report.wrong))),
            uncertain=report.uncertain, matrix=report.matrix,
            note="misleading feedback injected")
    return filter_report


# ----------------------------------------------------------------------
# Grading
# ----------------------------------------------------------------------
def graded_recovery(call: MethodCall, result: WorkflowResult,
                    fault_class: str, rounds: int,
                    corrections: int | None = None,
                    reboots: int | None = None) -> TaskRun:
    """Grade a fault-injected run.  Recovery requires *both* the
    validator's acceptance and an Eval2 grade against the golden
    artifacts — a fooled validator does not count as recovered."""
    level = call.grade(result.final_tb)
    recovered = bool(result.validated) and level >= EvalLevel.EVAL2
    return call.result(
        level,
        validated=result.validated, gave_up=result.gave_up,
        corrections=(result.corrections if corrections is None
                     else corrections),
        reboots=result.reboots if reboots is None else reboots,
        final_from_corrector=result.final_from_corrector,
        took_any_action=result.took_any_action,
        fault_class=fault_class, recovered=recovered,
        recovery_round=rounds if recovered else None,
        rounds=rounds)


# ----------------------------------------------------------------------
# The packs
# ----------------------------------------------------------------------
@campaign_method(METHOD_RECOVERY_CORRUPTED)
def _run_recovery_corrupted(call: MethodCall) -> TaskRun:
    client = CorruptingClient(call.client)
    workflow = CorrectBenchWorkflow(client, call.task, call.criterion,
                                    group_size=call.group_size,
                                    trace_label=call.method)
    result = workflow.run()
    return graded_recovery(call, result, FAULT_CORRUPTED,
                           rounds=len(result.history))


@campaign_method(METHOD_RECOVERY_MISLEADING)
def _run_recovery_misleading(call: MethodCall) -> TaskRun:
    workflow = CorrectBenchWorkflow(
        call.client, call.task, call.criterion,
        group_size=call.group_size, trace_label=call.method,
        report_filter=misleading_report_filter())
    result = workflow.run()
    return graded_recovery(call, result, FAULT_MISLEADING,
                           rounds=len(result.history))


@campaign_method(METHOD_RECOVERY_BUDGET)
def _run_recovery_budget(call: MethodCall) -> TaskRun:
    rounds = 0
    corrections = 0
    reboots = 0
    result: WorkflowResult | None = None
    for restart in range(BUDGET_MAX_RESTARTS + 1):
        client = AttemptOffsetClient(call.client,
                                     restart * BUDGET_ATTEMPT_STRIDE)
        workflow = CorrectBenchWorkflow(
            client, call.task, call.criterion, ic_max=1, ir_max=2,
            group_size=call.group_size,
            trace_label=f"{call.method}.restart{restart}")
        result = workflow.run()
        rounds += len(result.history)
        corrections += result.corrections
        reboots += result.reboots
        if result.validated:
            break
    return graded_recovery(call, result, FAULT_BUDGET, rounds=rounds,
                           corrections=corrections, reboots=reboots)
