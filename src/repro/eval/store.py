"""Persistent, content-addressed campaign artifact store.

Campaigns used to be all-or-nothing: a crash at task 155 of 156 threw
away every completed simulation, and repeated CLI runs started from a
blank process.  :class:`CampaignStore` makes campaign results durable
on disk so a killed campaign resumes without resimulating, repeated
runs start warm, and shard workers can share one result set:

- **Keying.**  A result is addressed by a :func:`store_key` — the
  (task, method, seed, profile, criterion, group size) coordinates of
  the work item plus the :func:`context_fingerprint` of the resolved
  :class:`~repro.hdl.context.SimContext` and the LLM tier.  Only the
  *result-relevant* context fields enter the fingerprint
  (:data:`CONTEXT_RESULT_FIELDS`); operational knobs — worker counts,
  start methods, cache capacities, trace/store directories — do not,
  so resuming with ``--jobs 8`` reuses entries a serial run produced.

- **Layout.**  ``blobs/<sha256>.json`` holds the canonical-JSON result
  payloads, content-addressed: the file name *is* the SHA-256 of the
  bytes, verified on every read.  ``entries/<key-digest>.json`` maps a
  key digest to its blob (the durable truth — one file per entry, so
  concurrent writers never contend on shared state).  ``manifest.json``
  is a versioned index rebuilt from the entry files when torn, and
  ``snapshot.bin`` co-locates a :class:`~repro.core.caches.CacheSnapshot`
  so resumed runs and shard workers boot with warm front-end caches.

- **Writes** go through tmp-file + :func:`os.replace` rename, so a
  SIGKILL at any point leaves either the old state or the new state on
  disk — never a torn blob.  Two processes sharing a store race only
  on the advisory manifest (last writer wins); their entry and blob
  files land independently and :meth:`CampaignStore.keys` reads them
  all.

- **Integrity.**  A tampered, truncated, or dangling blob raises a
  typed :class:`StoreIntegrityError` at read time; the store never
  silently serves stale or corrupt data.

:func:`repro.eval.campaign.run_campaign` accepts ``store=`` /
``resume=`` (and the CLI ``campaign --store DIR --resume``); the shard
coordinator (``campaign --shards N``) fans task slices out to worker
processes that all read and write one store.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path

from ..core.caches import (CacheSnapshot, SnapshotIntegrityError,
                           read_snapshot_file, write_snapshot_file)
from ..hdl.context import SimContext
from .methods import TaskRun

#: On-disk schema version; bumped when blob/entry/manifest shapes
#: change so a stale store fails loudly instead of half-resuming.
STORE_VERSION = 1

#: SimContext fields that can change a campaign item's *result* (and
#: therefore enter the store key).  Deliberately excludes operational
#: knobs — ``jobs``, ``start_method``, ``warm_start``, cache
#: capacities, ``trace_dir``, ``store_dir``, ``llm_fixture_dir`` — so
#: rerunning with different parallelism or paths still reuses entries.
CONTEXT_RESULT_FIELDS = ("engine", "lexer", "mutant_engine", "max_time",
                         "max_stmts", "llm_backend", "llm_model",
                         "llm_base_url")


class StoreError(RuntimeError):
    """A campaign store operation failed (bad layout, bad version)."""


class StoreIntegrityError(StoreError):
    """On-disk state failed verification: a blob whose bytes do not
    hash to its content address, a truncated or unparseable record, an
    entry pointing at a missing blob, or a payload recorded under a
    different key.  Raised instead of ever returning suspect data."""


def _canonical(obj) -> bytes:
    """Canonical JSON bytes (sorted keys, no whitespace) — the hashed
    representation, so digests are stable across processes."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def llm_tier(context: SimContext) -> str:
    """The model tier a context's results come from.

    >>> llm_tier(SimContext())
    'synthetic'
    >>> llm_tier(SimContext(llm_backend="fixture+hf"))
    'fixture+hf'
    """
    return context.llm_backend or "synthetic"


def context_fingerprint(context: SimContext) -> str:
    """SHA-256 over the result-relevant context fields.

    Two contexts that differ only in operational knobs fingerprint
    identically, so a resume under different parallelism still hits:

    >>> a = SimContext(jobs=1)
    >>> b = SimContext(jobs=8, start_method="spawn")
    >>> context_fingerprint(a) == context_fingerprint(b)
    True
    >>> context_fingerprint(a) == context_fingerprint(
    ...     a.evolve(engine="interpret"))
    False
    """
    fields = {name: getattr(context, name)
              for name in CONTEXT_RESULT_FIELDS}
    return _sha256(_canonical(fields))


def store_key(method: str, task_id: str, seed: int, profile: str,
              criterion: str, group_size: int,
              context: SimContext) -> dict:
    """The addressing record for one campaign work item.

    Plain JSON-able dict so keys travel in manifests and entry files
    verbatim; :func:`key_digest` collapses one to a file name.
    """
    return {
        "task_id": task_id,
        "method": method,
        "seed": int(seed),
        "profile": profile,
        "criterion": criterion,
        "group_size": int(group_size),
        "tier": llm_tier(context),
        "context": context_fingerprint(context),
    }


def key_digest(key: dict) -> str:
    """Stable digest of a :func:`store_key` (the entry file name)."""
    return _sha256(_canonical(key))


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmp file + rename.

    ``os.replace`` is atomic on POSIX: a reader (or a crash) sees the
    complete old file or the complete new file, never a prefix.
    """
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class CampaignStore:
    """On-disk campaign result store rooted at ``root``.

    Opening creates the layout if absent.  A manifest that fails to
    parse (a torn write from a crashed process, or tampering) is
    *recovered* by rebuilding the index from the entry files — with a
    stderr warning — because entries, not the manifest, are the durable
    truth; an entry or blob that fails verification raises
    :class:`StoreIntegrityError` instead.
    """

    def __init__(self, root):
        self.root = Path(root)
        self._blobs = self.root / "blobs"
        self._entries = self.root / "entries"
        self._manifest_path = self.root / "manifest.json"
        self._snapshot_path = self.root / "snapshot.bin"
        self._blobs.mkdir(parents=True, exist_ok=True)
        self._entries.mkdir(parents=True, exist_ok=True)
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._evictions = 0
        self._recovered_manifest = False
        self._index = self._load_manifest()

    # -- manifest ------------------------------------------------------
    def _load_manifest(self) -> dict:
        try:
            raw = self._manifest_path.read_bytes()
        except FileNotFoundError:
            return self._rebuild_index(write=False)
        try:
            manifest = json.loads(raw)
            version = manifest["version"]
            entries = manifest["entries"]
            if not isinstance(entries, dict):
                raise TypeError("entries is not an object")
        except (ValueError, KeyError, TypeError) as exc:
            # A torn manifest must never lose completed work: the entry
            # files are the truth, so recover the index from them and
            # say so loudly.
            print(f"warning: campaign store manifest "
                  f"{self._manifest_path} is unreadable ({exc}); "
                  f"rebuilding from entry files", file=sys.stderr)
            self._recovered_manifest = True
            return self._rebuild_index(write=True)
        if version != STORE_VERSION:
            raise StoreError(
                f"campaign store {self.root} has manifest version "
                f"{version!r}; this build reads {STORE_VERSION}")
        return dict(entries)

    def _rebuild_index(self, write: bool) -> dict:
        index = {}
        for path in sorted(self._entries.glob("*.json")):
            entry = self._read_entry_file(path)
            index[path.stem] = {"key": entry["key"], "blob": entry["blob"]}
        self._index = index
        if write:
            self.flush_manifest()
        return index

    def flush_manifest(self) -> Path:
        """Write the advisory index (atomic, last-writer-wins).

        Entries from concurrent writers that this process never saw are
        not lost — :meth:`keys` and :meth:`get` read the entry files —
        the manifest only accelerates listings and ships in CI
        artifacts."""
        manifest = {"version": STORE_VERSION,
                    "count": len(self._index),
                    "entries": self._index}
        _atomic_write(self._manifest_path,
                      json.dumps(manifest, sort_keys=True,
                                 indent=1).encode("utf-8") + b"\n")
        return self._manifest_path

    def manifest(self) -> dict:
        """The current in-memory index: ``{digest: {key, blob}}``."""
        return dict(self._index)

    @property
    def recovered_manifest(self) -> bool:
        """Did opening this store rebuild a torn manifest?"""
        return self._recovered_manifest

    # -- entries and blobs ---------------------------------------------
    def _read_entry_file(self, path: Path) -> dict:
        try:
            entry = json.loads(path.read_bytes())
            if entry["version"] != STORE_VERSION:
                raise StoreError(
                    f"entry {path.name} has version "
                    f"{entry['version']!r}; this build reads "
                    f"{STORE_VERSION}")
            entry["key"]
            entry["blob"]
        except StoreError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreIntegrityError(
                f"campaign store entry {path} is corrupt: {exc}") from exc
        return entry

    def _read_blob(self, blob_sha: str, key: dict) -> dict:
        path = self._blobs / f"{blob_sha}.json"
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise StoreIntegrityError(
                f"entry for {key.get('task_id')!r} points at missing "
                f"blob {blob_sha}") from None
        if _sha256(data) != blob_sha:
            raise StoreIntegrityError(
                f"blob {blob_sha} failed its content hash "
                f"(tampered or truncated)")
        try:
            payload = json.loads(data)
            if payload["version"] != STORE_VERSION:
                raise StoreIntegrityError(
                    f"blob {blob_sha} has version "
                    f"{payload['version']!r}")
            if payload["key"] != key:
                raise StoreIntegrityError(
                    f"blob {blob_sha} was recorded under a different "
                    f"key than the entry that references it")
        except StoreIntegrityError:
            raise
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreIntegrityError(
                f"blob {blob_sha} is corrupt: {exc}") from exc
        return payload

    def get(self, key: dict) -> TaskRun | None:
        """The stored :class:`TaskRun` for ``key``, or ``None`` on a
        miss.  Every read re-verifies the blob's content hash and the
        recorded key; failures raise :class:`StoreIntegrityError`."""
        digest = key_digest(key)
        path = self._entries / f"{digest}.json"
        try:
            entry = self._read_entry_file(path)
        except FileNotFoundError:
            self._misses += 1
            return None
        payload = self._read_blob(entry["blob"], key)
        try:
            run = TaskRun.from_payload(payload["run"])
        except (ValueError, KeyError, TypeError) as exc:
            raise StoreIntegrityError(
                f"stored run for {key.get('task_id')!r} does not decode: "
                f"{exc}") from exc
        self._hits += 1
        return run

    def contains(self, key: dict) -> bool:
        """Fast existence probe (no integrity verification)."""
        return (self._entries / f"{key_digest(key)}.json").exists()

    def put(self, key: dict, run: TaskRun) -> str:
        """Store ``run`` under ``key``; returns the blob's SHA-256.

        Blob first, entry second: a kill between the two leaves an
        unreferenced blob (garbage, harmless), never an entry pointing
        at a missing blob.  Re-putting an identical result is a no-op
        at the blob layer (content addressing); a different result for
        the same key atomically replaces the entry (last writer wins).
        """
        payload = {"version": STORE_VERSION, "key": key,
                   "run": run.to_payload()}
        blob = _canonical(payload)
        blob_sha = _sha256(blob)
        blob_path = self._blobs / f"{blob_sha}.json"
        if not blob_path.exists():
            _atomic_write(blob_path, blob)
        digest = key_digest(key)
        entry = {"version": STORE_VERSION, "key": key, "blob": blob_sha}
        _atomic_write(self._entries / f"{digest}.json",
                      _canonical(entry))
        self._index[digest] = {"key": key, "blob": blob_sha}
        self._puts += 1
        self.flush_manifest()
        return blob_sha

    def evict(self, key: dict) -> bool:
        """Drop the entry for ``key`` (its blob stays content-addressed
        garbage).  Returns whether an entry existed."""
        digest = key_digest(key)
        try:
            (self._entries / f"{digest}.json").unlink()
        except FileNotFoundError:
            return False
        self._index.pop(digest, None)
        self._evictions += 1
        self.flush_manifest()
        return True

    def keys(self) -> tuple[dict, ...]:
        """Every stored key, read from the entry files (sees concurrent
        writers' entries the in-memory manifest missed)."""
        return tuple(self._read_entry_file(path)["key"]
                     for path in sorted(self._entries.glob("*.json")))

    def export_keys(self) -> tuple[str, ...]:
        """Key digests on disk (cheap introspection; mirrors
        :meth:`repro.core.caches.ScopedLruCache.export_keys`)."""
        return tuple(sorted(path.stem
                            for path in self._entries.glob("*.json")))

    def __len__(self) -> int:
        return sum(1 for _ in self._entries.glob("*.json"))

    def stats(self) -> dict:
        return {"hits": self._hits, "misses": self._misses,
                "puts": self._puts, "evictions": self._evictions,
                "entries": len(self)}

    # -- co-located warm-start snapshot --------------------------------
    def save_snapshot(self, snapshot: CacheSnapshot) -> Path:
        """Persist a warm-start snapshot next to the results, so
        resumed runs and shard workers boot with warm caches."""
        write_snapshot_file(snapshot, self._snapshot_path)
        return self._snapshot_path

    def load_snapshot(self) -> CacheSnapshot | None:
        """The co-located snapshot, or ``None`` when absent.  A
        tampered snapshot raises :class:`StoreIntegrityError` — a
        warm-up artifact must fail loudly, not poison every cache."""
        try:
            return read_snapshot_file(self._snapshot_path)
        except FileNotFoundError:
            return None
        except SnapshotIntegrityError as exc:
            raise StoreIntegrityError(str(exc)) from exc
