"""Pluggable campaign-method registry.

The campaign runner used to hardcode its three methods in an if/elif
chain inside ``run_one`` — adding a strategy (a CorrectHDL-style
HLS-reference corrector, an AutoVeriFix-style trace-guided repairer,
an ablation) meant editing the runner, its config validation and the
CLI choices by hand.  This module turns a method into a registered
entry::

    from repro.eval import campaign_method

    @campaign_method("my-method")
    def _my_method(call: MethodCall) -> TaskRun:
        testbench = MyGenerator(call.client, call.task).generate()
        return call.result(call.grade(testbench))

Registered names are picked up everywhere a method name is accepted:
``run_one`` dispatch, ``CampaignConfig`` validation and the CLI's
``--method`` choices.  Runners receive a :class:`MethodCall` — the
fully-resolved per-item environment (task, metered client, golden
artifacts, criterion) — and return a :class:`TaskRun`; the
:meth:`MethodCall.grade` / :meth:`MethodCall.result` helpers cover the
common produce-testbench-then-grade shape.

Pool caveat: the registry is per process.  Campaign workers inherit
registrations made before the shared pool spawned (fork start method);
register out-of-tree methods at import time — or run serial campaigns —
to be start-method agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.agent import CorrectBenchWorkflow, WorkflowResult
from ..core.baseline import DirectBaseline
from ..core.generator import AutoBenchGenerator
from ..core.validator import Criterion
from ..llm.base import MeteredClient, Usage, UsageMeter
from ..problems.model import TaskSpec
from .autoeval import EvalLevel, evaluate
from .golden import GoldenArtifacts

METHOD_BASELINE = "baseline"
METHOD_AUTOBENCH = "autobench"
METHOD_CORRECTBENCH = "correctbench"


@dataclass(frozen=True)
class TaskRun:
    """One (method, task, seed) outcome."""

    method: str
    task_id: str
    kind: str
    seed: int
    level: EvalLevel
    usage: Usage = Usage()
    validated: bool | None = None     # CorrectBench only
    gave_up: bool | None = None
    corrections: int = 0
    reboots: int = 0
    final_from_corrector: bool = False
    took_any_action: bool = False
    # Recovery scenario packs (repro.eval.scenarios) only:
    fault_class: str = ""             # "" = no fault injected
    recovered: bool | None = None     # validated AND graded >= Eval2
    recovery_round: int | None = None  # validation round of recovery
    rounds: int = 0                   # total validation rounds run

    def to_payload(self) -> dict:
        """Plain-JSON form for the campaign artifact store.

        Enum and usage fields flatten to primitives;
        :meth:`from_payload` round-trips to an equal ``TaskRun``.
        """
        return {
            "method": self.method, "task_id": self.task_id,
            "kind": self.kind, "seed": self.seed,
            "level": int(self.level),
            "usage": {"input_tokens": self.usage.input_tokens,
                      "output_tokens": self.usage.output_tokens},
            "validated": self.validated, "gave_up": self.gave_up,
            "corrections": self.corrections, "reboots": self.reboots,
            "final_from_corrector": self.final_from_corrector,
            "took_any_action": self.took_any_action,
            "fault_class": self.fault_class, "recovered": self.recovered,
            "recovery_round": self.recovery_round, "rounds": self.rounds,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TaskRun":
        """Rebuild a ``TaskRun`` from :meth:`to_payload` output.

        Strict: unknown or missing fields raise ``ValueError`` so a
        schema drift surfaces as a typed store error, never as a
        silently mis-shaped result.
        """
        data = dict(payload)
        try:
            level = EvalLevel(data.pop("level"))
            usage = Usage(**data.pop("usage"))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"bad TaskRun payload: {exc}") from exc
        try:
            return cls(level=level, usage=usage, **data)
        except TypeError as exc:
            raise ValueError(f"bad TaskRun payload: {exc}") from exc


@dataclass(frozen=True)
class MethodCall:
    """Everything a method runner needs for one (task, seed) item."""

    method: str
    task: TaskSpec
    seed: int
    client: MeteredClient
    meter: UsageMeter
    golden: GoldenArtifacts
    criterion: Criterion
    group_size: int

    def grade(self, testbench) -> EvalLevel:
        """AutoEval the produced testbench against the golden artifacts."""
        return evaluate(testbench, self.golden).level

    def result(self, level: EvalLevel, **extra) -> TaskRun:
        """Build the :class:`TaskRun` for this item (usage metered)."""
        return TaskRun(self.method, self.task.task_id, self.task.kind,
                       self.seed, level, self.meter.total, **extra)


MethodRunner = Callable[[MethodCall], TaskRun]

_registry: dict[str, MethodRunner] = {}


def register_method(name: str, runner: MethodRunner, *,
                    replace: bool = False) -> MethodRunner:
    """Register ``runner`` under ``name``.

    ``replace=True`` allows overriding an existing entry (ablations
    that shadow a built-in).  Returns the runner for chaining.

    >>> _ = register_method("docs-demo", lambda call: None)
    >>> "docs-demo" in registered_methods()
    True
    >>> register_method("docs-demo", lambda call: None)
    Traceback (most recent call last):
        ...
    ValueError: method 'docs-demo' is already registered (pass replace=True to override)
    >>> unregister_method("docs-demo")
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"method name must be a non-empty string, "
                         f"got {name!r}")
    if not callable(runner):
        raise TypeError(f"method runner must be callable, got {runner!r}")
    if name in _registry and not replace:
        raise ValueError(f"method {name!r} is already registered "
                         f"(pass replace=True to override)")
    _registry[name] = runner
    return runner


def campaign_method(name: str, *, replace: bool = False):
    """Decorator form of :func:`register_method`."""
    def decorate(runner: MethodRunner) -> MethodRunner:
        return register_method(name, runner, replace=replace)
    return decorate


def unregister_method(name: str) -> None:
    """Remove a registered method (tests, plugin teardown)."""
    if name not in _registry:
        raise ValueError(f"method {name!r} is not registered")
    del _registry[name]


def registered_methods() -> tuple[str, ...]:
    """Registered method names, in registration order.

    >>> set(ALL_METHODS) <= set(registered_methods())
    True
    """
    return tuple(_registry)


def get_method(name: str) -> MethodRunner:
    """Look up a runner; unknown names raise ``ValueError`` listing the
    registered choices.

    >>> callable(get_method("baseline"))
    True
    >>> get_method("magic")  # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    ValueError: unknown method 'magic'; registered methods: (...)
    """
    try:
        return _registry[name]
    except KeyError:
        raise ValueError(f"unknown method {name!r}; registered methods: "
                         f"{registered_methods()}") from None


# ----------------------------------------------------------------------
# Built-in methods (the paper's three columns)
# ----------------------------------------------------------------------
@campaign_method(METHOD_CORRECTBENCH)
def _run_correctbench(call: MethodCall) -> TaskRun:
    workflow = CorrectBenchWorkflow(call.client, call.task, call.criterion,
                                    group_size=call.group_size)
    result: WorkflowResult = workflow.run()
    return call.result(
        call.grade(result.final_tb),
        validated=result.validated, gave_up=result.gave_up,
        corrections=result.corrections, reboots=result.reboots,
        final_from_corrector=result.final_from_corrector,
        took_any_action=result.took_any_action)


@campaign_method(METHOD_AUTOBENCH)
def _run_autobench(call: MethodCall) -> TaskRun:
    testbench = AutoBenchGenerator(call.client, call.task).generate(attempt=0)
    return call.result(call.grade(testbench))


@campaign_method(METHOD_BASELINE)
def _run_baseline(call: MethodCall) -> TaskRun:
    testbench = DirectBaseline(call.client, call.task).generate(attempt=0)
    return call.result(call.grade(testbench))


#: The paper's method columns, in reporting order.  Deliberately a
#: static tuple: campaigns default to the built-ins even after plugins
#: register more methods.
ALL_METHODS = (METHOD_CORRECTBENCH, METHOD_AUTOBENCH, METHOD_BASELINE)
