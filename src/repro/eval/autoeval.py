"""AutoEval: the paper's three-level testbench evaluation (Table II).

=======  ==========================================================
Failed   codes have syntax errors
Eval0    codes have no syntax error
Eval1    Eval0 + the report with the golden RTL as DUT is "Passed"
Eval2    Eval1 + the report agrees with the golden testbench's on at
         least 80% of the mutant DUTs
=======  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..core.artifacts import HybridTestbench, MonolithicTestbench
from ..core.checker_runtime import checker_compiles
from ..core.simulation import run_monolithic, run_mutant_sweep, syntax_ok
from ..problems.dataset import get_task
from .golden import (GoldenArtifacts, golden_artifacts, hybrid_verdict,
                     hybrid_verdicts_batch)

EVAL2_AGREEMENT = 0.80


class EvalLevel(IntEnum):
    FAILED = 0
    EVAL0 = 1
    EVAL1 = 2
    EVAL2 = 3

    @property
    def label(self) -> str:
        return {0: "Failed", 1: "Eval0", 2: "Eval1", 3: "Eval2"}[self]


@dataclass(frozen=True)
class EvalResult:
    level: EvalLevel
    detail: str = ""
    agreement: float | None = None  # mutant-report agreement (Eval2 stage)

    def passes(self, level: EvalLevel) -> bool:
        return self.level >= level


def evaluate_hybrid(tb: HybridTestbench,
                    golden: GoldenArtifacts | None = None,
                    sim_jobs: int | None = None) -> EvalResult:
    """Grade a hybrid testbench.

    The mutant sweep runs through :func:`run_mutant_sweep` (lockstep by
    default).  ``sim_jobs`` applies to the per-mutant path only and
    defaults to the active :class:`~repro.hdl.SimContext`'s ``jobs``;
    values above 1 fan the sweep across the persistent worker pool.
    """
    task = get_task(tb.task_id)
    golden = golden or golden_artifacts(tb.task_id)

    if not syntax_ok(tb.driver_src):
        return EvalResult(EvalLevel.FAILED, "driver has syntax errors")
    if not checker_compiles(tb.checker_src):
        return EvalResult(EvalLevel.FAILED, "checker has syntax errors")

    verdict = hybrid_verdict(tb, task.golden_rtl(), task)
    if verdict is None:
        return EvalResult(EvalLevel.EVAL0,
                          "testbench crashed on the golden DUT")
    if verdict is not True:
        return EvalResult(EvalLevel.EVAL0,
                          "golden DUT reported Failed")

    if golden.mutants:
        verdicts = hybrid_verdicts_batch(
            tb, [mutant.source for mutant in golden.mutants], task,
            jobs=sim_jobs)
    else:
        verdicts = []
    agreement = _mutant_agreement(verdicts, golden)
    if agreement >= EVAL2_AGREEMENT:
        return EvalResult(EvalLevel.EVAL2, agreement=agreement)
    return EvalResult(EvalLevel.EVAL1,
                      f"mutant agreement {agreement:.0%}",
                      agreement=agreement)


def evaluate_monolithic(tb: MonolithicTestbench,
                        golden: GoldenArtifacts | None = None,
                        sim_jobs: int | None = None) -> EvalResult:
    task = get_task(tb.task_id)
    golden = golden or golden_artifacts(tb.task_id)

    if not syntax_ok(tb.source):
        return EvalResult(EvalLevel.FAILED, "testbench has syntax errors")

    run = run_monolithic(tb.source, task.golden_rtl())
    if run.status != "ok" or run.verdict is not True:
        return EvalResult(EvalLevel.EVAL0,
                          run.detail or "golden DUT reported Failed")

    if golden.mutants:
        sweep = run_mutant_sweep(
            tb.source, [mutant.source for mutant in golden.mutants],
            kind="monolithic", jobs=sim_jobs)
        verdicts = [result.verdict if result.status == "ok" else None
                    for result in sweep.runs]
    else:
        verdicts = []
    agreement = _mutant_agreement(verdicts, golden)
    if agreement >= EVAL2_AGREEMENT:
        return EvalResult(EvalLevel.EVAL2, agreement=agreement)
    return EvalResult(EvalLevel.EVAL1,
                      f"mutant agreement {agreement:.0%}",
                      agreement=agreement)


def evaluate(tb, golden: GoldenArtifacts | None = None,
             sim_jobs: int | None = None) -> EvalResult:
    """Evaluate either artifact type."""
    if isinstance(tb, HybridTestbench):
        return evaluate_hybrid(tb, golden, sim_jobs=sim_jobs)
    if isinstance(tb, MonolithicTestbench):
        return evaluate_monolithic(tb, golden, sim_jobs=sim_jobs)
    raise TypeError(f"cannot evaluate {type(tb).__name__}")


def _mutant_agreement(verdicts, golden: GoldenArtifacts) -> float:
    """Fraction of mutants where the TB's report matches the golden TB's.

    ``verdicts`` are the candidate testbench's per-mutant reports (from a
    batched run), aligned with ``golden.mutant_verdicts``.
    """
    if not golden.mutants:
        return 1.0
    agree = 0
    for verdict, reference in zip(verdicts, golden.mutant_verdicts):
        if verdict is not None and verdict == reference:
            agree += 1
    return agree / len(golden.mutants)
