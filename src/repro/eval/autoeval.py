"""AutoEval: the paper's three-level testbench evaluation (Table II).

=======  ==========================================================
Failed   codes have syntax errors
Eval0    codes have no syntax error
Eval1    Eval0 + the report with the golden RTL as DUT is "Passed"
Eval2    Eval1 + the report agrees with the golden testbench's on at
         least 80% of the mutant DUTs
=======  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..core.artifacts import HybridTestbench, MonolithicTestbench
from ..core.checker_runtime import checker_compiles
from ..core.simulation import run_monolithic, syntax_ok
from ..problems.dataset import get_task
from .golden import GoldenArtifacts, golden_artifacts, hybrid_verdict

EVAL2_AGREEMENT = 0.80


class EvalLevel(IntEnum):
    FAILED = 0
    EVAL0 = 1
    EVAL1 = 2
    EVAL2 = 3

    @property
    def label(self) -> str:
        return {0: "Failed", 1: "Eval0", 2: "Eval1", 3: "Eval2"}[self]


@dataclass(frozen=True)
class EvalResult:
    level: EvalLevel
    detail: str = ""
    agreement: float | None = None  # mutant-report agreement (Eval2 stage)

    def passes(self, level: EvalLevel) -> bool:
        return self.level >= level


def evaluate_hybrid(tb: HybridTestbench,
                    golden: GoldenArtifacts | None = None) -> EvalResult:
    task = get_task(tb.task_id)
    golden = golden or golden_artifacts(tb.task_id)

    if not syntax_ok(tb.driver_src):
        return EvalResult(EvalLevel.FAILED, "driver has syntax errors")
    if not checker_compiles(tb.checker_src):
        return EvalResult(EvalLevel.FAILED, "checker has syntax errors")

    verdict = hybrid_verdict(tb, task.golden_rtl(), task)
    if verdict is None:
        return EvalResult(EvalLevel.EVAL0,
                          "testbench crashed on the golden DUT")
    if verdict is not True:
        return EvalResult(EvalLevel.EVAL0,
                          "golden DUT reported Failed")

    agreement = _mutant_agreement(
        lambda mutant_src: hybrid_verdict(tb, mutant_src, task), golden)
    if agreement >= EVAL2_AGREEMENT:
        return EvalResult(EvalLevel.EVAL2, agreement=agreement)
    return EvalResult(EvalLevel.EVAL1,
                      f"mutant agreement {agreement:.0%}",
                      agreement=agreement)


def evaluate_monolithic(tb: MonolithicTestbench,
                        golden: GoldenArtifacts | None = None,
                        ) -> EvalResult:
    task = get_task(tb.task_id)
    golden = golden or golden_artifacts(tb.task_id)

    if not syntax_ok(tb.source):
        return EvalResult(EvalLevel.FAILED, "testbench has syntax errors")

    run = run_monolithic(tb.source, task.golden_rtl())
    if run.status != "ok" or run.verdict is not True:
        return EvalResult(EvalLevel.EVAL0,
                          run.detail or "golden DUT reported Failed")

    def verdict_on(mutant_src: str) -> bool | None:
        result = run_monolithic(tb.source, mutant_src)
        return result.verdict if result.status == "ok" else None

    agreement = _mutant_agreement(verdict_on, golden)
    if agreement >= EVAL2_AGREEMENT:
        return EvalResult(EvalLevel.EVAL2, agreement=agreement)
    return EvalResult(EvalLevel.EVAL1,
                      f"mutant agreement {agreement:.0%}",
                      agreement=agreement)


def evaluate(tb, golden: GoldenArtifacts | None = None) -> EvalResult:
    """Evaluate either artifact type."""
    if isinstance(tb, HybridTestbench):
        return evaluate_hybrid(tb, golden)
    if isinstance(tb, MonolithicTestbench):
        return evaluate_monolithic(tb, golden)
    raise TypeError(f"cannot evaluate {type(tb).__name__}")


def _mutant_agreement(verdict_on, golden: GoldenArtifacts) -> float:
    """Fraction of mutants where the TB's report matches the golden TB's."""
    if not golden.mutants:
        return 1.0
    agree = 0
    for mutant, reference in zip(golden.mutants, golden.mutant_verdicts):
        verdict = verdict_on(mutant.source)
        if verdict is not None and verdict == reference:
            agree += 1
    return agree / len(golden.mutants)
