"""Golden reference artifacts per task: testbench, mutants, verdicts.

AutoEval's Eval2 needs, per task: the golden testbench (used as the
report oracle) and ten mutant DUTs.  Both are deterministic per task and
cached process-wide — every method, seed and criterion evaluates against
the same reference artifacts, exactly like the paper's fixed dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..codegen import render_checker_core, render_driver
from ..core.artifacts import HybridTestbench
from ..core.checker_runtime import run_checker
from ..core.simulation import dut_compiles, run_driver, run_mutant_sweep
from ..mutation import Mutant, generate_mutants
from ..problems.dataset import get_task
from ..problems.model import TaskSpec

N_MUTANTS = 10


def hybrid_verdict(tb: HybridTestbench, dut_src: str,
                   task: TaskSpec) -> bool | None:
    """The report of a hybrid testbench on a DUT.

    ``True`` = Passed, ``False`` = Failed, ``None`` = the testbench could
    not produce a report (driver or checker crashed).
    """
    run = run_driver(tb.driver_src, dut_src)
    if not run.ok:
        return None
    report = run_checker(tb.checker_src, task.ports, run.records)
    if not report.ok:
        return None
    return report.all_passed


def hybrid_verdicts_batch(tb: HybridTestbench, dut_srcs,
                          task: TaskSpec,
                          jobs: int | None = None) -> list[bool | None]:
    """Batched :func:`hybrid_verdict`: one driver, many DUT variants.

    Routed through :func:`run_mutant_sweep`, so under the default
    lockstep strategy the whole batch executes as one union simulation
    (AutoEval's mutant sweep runs the same testbench against 10 mutants
    of one golden RTL); ``jobs=None`` resolves through the active
    :class:`~repro.hdl.SimContext` on the per-mutant path.
    """
    sweep = run_mutant_sweep(tb.driver_src, list(dut_srcs), jobs=jobs)
    verdicts: list[bool | None] = []
    for run in sweep.runs:
        if not run.ok:
            verdicts.append(None)
            continue
        report = run_checker(tb.checker_src, task.ports, run.records)
        verdicts.append(report.all_passed if report.ok else None)
    return verdicts


@dataclass(frozen=True)
class GoldenArtifacts:
    task_id: str
    testbench: HybridTestbench
    mutants: tuple[Mutant, ...]
    mutant_verdicts: tuple[bool, ...]  # golden TB's report per mutant

    @property
    def killed_mutants(self) -> int:
        return sum(1 for verdict in self.mutant_verdicts if not verdict)


@lru_cache(maxsize=512)
def golden_artifacts(task_id: str) -> GoldenArtifacts:
    """Build (and cache) the golden testbench + mutants for a task."""
    task = get_task(task_id)
    plan = task.canonical_scenarios()
    testbench = HybridTestbench(
        task_id=task.task_id,
        driver_src=render_driver(task, plan),
        checker_src=render_checker_core(task),
        scenarios=tuple((s.index, s.description) for s in plan),
        origin="golden")

    mutants = tuple(generate_mutants(
        task.golden_rtl(), N_MUTANTS, task.task_id,
        compile_check=lambda source: dut_compiles(source)[0]))

    raw = hybrid_verdicts_batch(testbench,
                                [mutant.source for mutant in mutants],
                                task)
    # The golden TB is known-runnable; a crash can only come from a
    # pathological mutant (e.g. a combinational loop) — call it Failed.
    verdicts = [bool(verdict) if verdict is not None else False
                for verdict in raw]
    return GoldenArtifacts(task.task_id, testbench, mutants,
                           tuple(verdicts))
