"""The Fig. 6a study: validation accuracy of the three criteria.

Protocol, following Section IV-C of the paper:

1. Collect a corpus of AutoBench-generated testbenches (the paper used
   1560 = 156 tasks x 10 from earlier runs) and label each one
   "correct"/"wrong" by its AutoEval Eval2 outcome.
2. Build one fixed judge group of 20 correctness-unknown RTLs per task.
3. Run each criterion's validator on every testbench with that group.
4. A validator "succeeds" on a testbench when its verdict matches the
   label; accuracy is reported for all / correct / wrong testbenches.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.generator import AutoBenchGenerator
# Criterion is re-exported as part of this module's API.
from ..core.validator import (CRITERIA, Criterion,  # noqa: F401
                              ScenarioValidator)
from ..llm.base import MeteredClient, UsageMeter
from ..llm.profiles import get_profile
from ..llm.synthetic import SyntheticLLM
from ..problems.dataset import get_task
from .autoeval import EvalLevel, evaluate
from .golden import golden_artifacts


@dataclass
class LabelledValidation:
    task_id: str
    sample: int
    label_correct: bool
    verdicts: dict  # criterion name -> bool


@dataclass
class StudyResult:
    records: list[LabelledValidation]

    def accuracy(self, criterion_name: str) -> dict:
        total = [r for r in self.records]
        correct = [r for r in self.records if r.label_correct]
        wrong = [r for r in self.records if not r.label_correct]

        def acc(rows):
            if not rows:
                return 0.0
            hits = sum(1 for r in rows
                       if r.verdicts[criterion_name] == r.label_correct)
            return hits / len(rows)

        return {"total": acc(total), "correct": acc(correct),
                "wrong": acc(wrong)}

    def accuracies(self) -> dict:
        return {name: self.accuracy(name) for name in CRITERIA}

    @property
    def n_correct(self) -> int:
        return sum(1 for r in self.records if r.label_correct)


def study_one_task(task_id: str, samples_per_task: int = 10,
                   profile_name: str = "gpt-4o", group_size: int = 20,
                   criteria: dict[str, Criterion] | None = None,
                   ) -> list[LabelledValidation]:
    """Generate, label and validate the TB corpus slice of one task."""
    task = get_task(task_id)
    profile = get_profile(profile_name)
    golden = golden_artifacts(task_id)
    records = []
    criteria = dict(criteria) if criteria is not None else dict(CRITERIA)

    # One fixed correctness-unknown judge group per task, as in the paper.
    group_client = MeteredClient(SyntheticLLM(profile, seed=990),
                                 UsageMeter())
    validators = {}
    shared_group = None
    for name, criterion in criteria.items():
        validator = ScenarioValidator(group_client, task, criterion,
                                      group_size)
        if shared_group is None:
            shared_group = validator.rtl_group
        else:
            validator.use_group(shared_group)
        validators[name] = validator

    for sample in range(samples_per_task):
        client = MeteredClient(SyntheticLLM(profile, seed=1000 + sample),
                               UsageMeter())
        testbench = AutoBenchGenerator(client, task).generate(attempt=0)
        label = evaluate(testbench, golden).level >= EvalLevel.EVAL2
        verdicts = {name: validator.validate(testbench).verdict
                    for name, validator in validators.items()}
        records.append(LabelledValidation(task_id, sample, label,
                                          verdicts))
    return records


def _worker(item: tuple) -> list[LabelledValidation]:
    task_id, samples, profile_name, group_size, criteria = item
    return study_one_task(task_id, samples, profile_name, group_size,
                          criteria)


def run_study(task_ids, samples_per_task: int = 10,
              profile_name: str = "gpt-4o", group_size: int = 20,
              n_jobs: int = 1,
              criteria: dict[str, Criterion] | None = None) -> StudyResult:
    items = [(task_id, samples_per_task, profile_name, group_size,
              criteria)
             for task_id in task_ids]
    records: list[LabelledValidation] = []
    if n_jobs > 1:
        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            for chunk in pool.map(_worker, items, chunksize=2):
                records.extend(chunk)
    else:
        for item in items:
            records.extend(_worker(item))
    return StudyResult(records)
