"""Campaign runner: methods x tasks x seeds -> evaluated results.

Reproduces the paper's experimental protocol: each method is applied to
every task, the experiment is repeated over several seeds ("we repeated
each experiment five times"), and every produced testbench is graded with
AutoEval.

Work items are referenced by ids (task ids, profile names) so campaigns
can fan out over a process pool — TaskSpec objects hold closures and are
deliberately never pickled.
"""

from __future__ import annotations

import os
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.agent import CorrectBenchWorkflow, WorkflowResult
from ..core.baseline import DirectBaseline
from ..core.generator import AutoBenchGenerator
from ..core.simulation import (get_default_engine, get_sim_pool,
                               set_default_engine, shutdown_sim_pool)
from ..core.validator import CRITERIA, DEFAULT_CRITERION
from ..llm.base import MeteredClient, Usage, UsageMeter
from ..llm.profiles import get_profile
from ..llm.synthetic import SyntheticLLM
from ..problems.dataset import get_task, load_dataset
from .autoeval import EvalLevel, evaluate
from .golden import golden_artifacts

METHOD_BASELINE = "baseline"
METHOD_AUTOBENCH = "autobench"
METHOD_CORRECTBENCH = "correctbench"
ALL_METHODS = (METHOD_CORRECTBENCH, METHOD_AUTOBENCH, METHOD_BASELINE)


@dataclass(frozen=True)
class TaskRun:
    """One (method, task, seed) outcome."""

    method: str
    task_id: str
    kind: str
    seed: int
    level: EvalLevel
    usage: Usage = Usage()
    validated: bool | None = None     # CorrectBench only
    gave_up: bool | None = None
    corrections: int = 0
    reboots: int = 0
    final_from_corrector: bool = False
    took_any_action: bool = False


@dataclass(frozen=True)
class CampaignConfig:
    task_ids: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    profile_name: str = "gpt-4o"
    criterion_name: str = DEFAULT_CRITERION.name
    methods: tuple[str, ...] = ALL_METHODS
    group_size: int = 20
    n_jobs: int = 1
    engine: str = ""  # "" = the process default (REPRO_SIM_ENGINE)


@dataclass
class CampaignResult:
    config: CampaignConfig
    runs: list[TaskRun] = field(default_factory=list)

    def of_method(self, method: str) -> list[TaskRun]:
        return [run for run in self.runs if run.method == method]

    def of(self, method: str, seed: int) -> list[TaskRun]:
        return [run for run in self.runs
                if run.method == method and run.seed == seed]


def default_config(task_ids: Iterable[str] | None = None,
                   seeds: Sequence[int] = (0,), **overrides,
                   ) -> CampaignConfig:
    if task_ids is None:
        task_ids = [task.task_id for task in load_dataset()]
    return CampaignConfig(task_ids=tuple(task_ids), seeds=tuple(seeds),
                          **overrides)


# ----------------------------------------------------------------------
# Single work item (also the process-pool worker)
# ----------------------------------------------------------------------
def run_one(method: str, task_id: str, seed: int,
            profile_name: str = "gpt-4o",
            criterion_name: str = DEFAULT_CRITERION.name,
            group_size: int = 20, engine: str = "") -> TaskRun:
    if engine and engine != get_default_engine():
        # Campaign items may execute in pool workers: pin the requested
        # simulation engine in whichever process runs this item, and
        # restore it afterwards so serial (in-process) campaigns don't
        # leak their engine choice into later work.
        previous = get_default_engine()
        set_default_engine(engine)
        try:
            return _run_one_inner(method, task_id, seed, profile_name,
                                  criterion_name, group_size)
        finally:
            set_default_engine(previous)
    return _run_one_inner(method, task_id, seed, profile_name,
                          criterion_name, group_size)


def _run_one_inner(method: str, task_id: str, seed: int,
                   profile_name: str, criterion_name: str,
                   group_size: int) -> TaskRun:
    task = get_task(task_id)
    profile = get_profile(profile_name)
    criterion = CRITERIA[criterion_name]
    meter = UsageMeter()
    client = MeteredClient(SyntheticLLM(profile, seed=seed), meter)
    golden = golden_artifacts(task_id)

    if method == METHOD_BASELINE:
        testbench = DirectBaseline(client, task).generate(attempt=0)
        level = evaluate(testbench, golden).level
        return TaskRun(method, task_id, task.kind, seed, level,
                       meter.total)
    if method == METHOD_AUTOBENCH:
        testbench = AutoBenchGenerator(client, task).generate(attempt=0)
        level = evaluate(testbench, golden).level
        return TaskRun(method, task_id, task.kind, seed, level,
                       meter.total)
    if method == METHOD_CORRECTBENCH:
        workflow = CorrectBenchWorkflow(client, task, criterion,
                                        group_size=group_size)
        result: WorkflowResult = workflow.run()
        level = evaluate(result.final_tb, golden).level
        return TaskRun(
            method, task_id, task.kind, seed, level, meter.total,
            validated=result.validated, gave_up=result.gave_up,
            corrections=result.corrections, reboots=result.reboots,
            final_from_corrector=result.final_from_corrector,
            took_any_action=result.took_any_action)
    raise ValueError(f"unknown method {method!r}")


def _worker(item: tuple) -> TaskRun:
    method, task_id, seed, profile, criterion, group_size, engine = item
    return run_one(method, task_id, seed, profile, criterion, group_size,
                   engine)


def run_campaign(config: CampaignConfig, progress=None) -> CampaignResult:
    """Run the full campaign, optionally over the shared process pool.

    Parallel campaigns draw workers from the persistent simulation pool
    (:func:`repro.core.simulation.get_sim_pool`), so consecutive
    campaigns — and interleaved batch simulation calls — reuse the same
    worker processes and their warm caches instead of paying a pool
    spin-up per run.
    """
    items = [(method, task_id, seed, config.profile_name,
              config.criterion_name, config.group_size, config.engine)
             for method in config.methods
             for seed in config.seeds
             for task_id in config.task_ids]

    result = CampaignResult(config)
    n_jobs = config.n_jobs or 1
    if n_jobs > 1:
        # A killed worker breaks the shared executor, and a concurrent
        # get_sim_pool grow request can shut it down mid-map (surfacing
        # as RuntimeError) — the same pair _pool_map recovers from.
        # Heal the pool and rerun once; a genuine worker error simply
        # re-raises from the retry.
        for attempt in (0, 1):
            del result.runs[:]
            try:
                pool = get_sim_pool(n_jobs)
                for index, run in enumerate(pool.map(_worker, items,
                                                     chunksize=4)):
                    result.runs.append(run)
                    if progress:
                        progress(index + 1, len(items), run)
                break
            except (BrokenProcessPool, RuntimeError):
                shutdown_sim_pool(wait=False)
                if attempt:
                    raise
    else:
        for index, item in enumerate(items):
            run = _worker(item)
            result.runs.append(run)
            if progress:
                progress(index + 1, len(items), run)
    return result


def campaign_jobs_from_env(default: int = 1) -> int:
    """Resolve worker count from ``REPRO_JOBS`` (0 = all cores)."""
    raw = os.environ.get("REPRO_JOBS", "")
    if not raw:
        return default
    value = int(raw)
    if value == 0:
        return os.cpu_count() or 1
    return max(1, value)
