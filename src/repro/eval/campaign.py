"""Campaign runner: methods x tasks x seeds -> evaluated results.

Reproduces the paper's experimental protocol: each method is applied to
every task, the experiment is repeated over several seeds ("we repeated
each experiment five times"), and every produced testbench is graded with
AutoEval.

Methods are pluggable: :func:`run_one` dispatches through the
:mod:`repro.eval.methods` registry, so a new strategy registered with
:func:`register_method` / :func:`campaign_method` runs through campaigns
and the CLI without touching this module.

Work items are referenced by ids (task ids, profile names) so campaigns
can fan out over a process pool — TaskSpec objects hold closures and are
deliberately never pickled.  Each item also carries the resolved
:class:`~repro.hdl.context.SimContext`, activated in whichever process
executes the item, so engine/lexer/limit choices neither depend on pool
workers' own defaults nor leak between serial items.
"""

from __future__ import annotations

import inspect
import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

from ..core.caches import caches, use_task_scope
from ..core.simulation import (design_template, get_sim_pool,
                               shutdown_sim_pool, _pair_template,
                               _resolve_start_method)
from ..core.validator import CRITERIA, DEFAULT_CRITERION
from ..hdl.context import (SimContext, current_context, resolve_jobs,
                           use_context)
from ..hdl.errors import HdlError
from ..llm.backends import is_live_backend, iter_fan_out, resolve_llm_client
from ..llm.base import MeteredClient, UsageMeter
from ..problems.dataset import get_task, load_dataset
from .golden import golden_artifacts
from .store import CampaignStore, StoreError, store_key
# The method registry (and TaskRun, which runners return) lives in
# repro.eval.methods; re-exported here (redundant-alias form) because
# this module is the historical import point for campaign types.
from .methods import ALL_METHODS as ALL_METHODS
from .methods import METHOD_AUTOBENCH as METHOD_AUTOBENCH
from .methods import METHOD_BASELINE as METHOD_BASELINE
from .methods import METHOD_CORRECTBENCH as METHOD_CORRECTBENCH
from .methods import MethodCall as MethodCall
from .methods import TaskRun as TaskRun
from .methods import campaign_method as campaign_method
from .methods import get_method
from .methods import register_method as register_method
from .methods import registered_methods as registered_methods
from .methods import unregister_method as unregister_method


@dataclass(frozen=True)
class CampaignConfig:
    task_ids: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    profile_name: str = "gpt-4o"
    criterion_name: str = DEFAULT_CRITERION.name
    methods: tuple[str, ...] = ALL_METHODS
    group_size: int = 20
    n_jobs: int = 1
    engine: str = ""  # legacy knob; prefer ``context``
    context: SimContext | None = None  # None = the caller's active context

    def __post_init__(self):
        for method in self.methods:
            get_method(method)  # raises ValueError listing the registry

    def resolved_context(self) -> SimContext:
        """The context campaign items will run under."""
        context = (self.context if self.context is not None
                   else current_context())
        if self.engine:
            context = context.evolve(engine=self.engine)
        return context


@dataclass
class CampaignResult:
    config: CampaignConfig
    runs: list[TaskRun] = field(default_factory=list)
    #: Items answered from the persistent artifact store (a resumed
    #: campaign's skipped work) vs items computed this run.  Zero/zero
    #: when the campaign ran without a store.
    store_hits: int = 0
    store_misses: int = 0

    def of_method(self, method: str) -> list[TaskRun]:
        return [run for run in self.runs if run.method == method]

    def of(self, method: str, seed: int) -> list[TaskRun]:
        return [run for run in self.runs
                if run.method == method and run.seed == seed]


def default_config(task_ids: Iterable[str] | None = None,
                   seeds: Sequence[int] = (0,), **overrides,
                   ) -> CampaignConfig:
    if task_ids is None:
        task_ids = [task.task_id for task in load_dataset()]
    return CampaignConfig(task_ids=tuple(task_ids), seeds=tuple(seeds),
                          **overrides)


# ----------------------------------------------------------------------
# Single work item (also the process-pool worker)
# ----------------------------------------------------------------------
def run_one(method: str, task_id: str, seed: int,
            profile_name: str = "gpt-4o",
            criterion_name: str = DEFAULT_CRITERION.name,
            group_size: int = 20, engine: str = "",
            context: SimContext | None = None) -> TaskRun:
    """Run one registered method on one (task, seed) item.

    The item executes under ``context`` (default: the caller's active
    context) via :func:`use_context`, so the configuration applies in
    whichever process runs it and is restored afterwards — serial
    campaigns cannot leak an engine choice into later work.

    The model client resolves through
    :func:`repro.llm.backends.resolve_llm_client`: the context's
    ``llm_backend`` selects the synthetic tier (the default), a live
    adapter stack, or fixture record/replay — campaigns, the CLI, and
    the service all inherit the choice through this one point.
    """
    runner = get_method(method)
    if context is None:
        context = current_context()
    if engine:  # legacy per-call string; folded into the context
        context = context.evolve(engine=engine)
    # The task scope gives this item its own template-cache bucket, so
    # one task's mutant churn cannot evict another's warm templates
    # (see repro.core.caches.ScopedLruCache).
    with use_context(context), use_task_scope(task_id):
        task = get_task(task_id)
        criterion = CRITERIA[criterion_name]
        meter = UsageMeter()
        inner = resolve_llm_client(profile_name, seed, context=context,
                                   task_id=task_id, method=method)
        client = MeteredClient(inner, meter)
        call = MethodCall(method=method, task=task, seed=seed,
                          client=client, meter=meter,
                          golden=golden_artifacts(task_id),
                          criterion=criterion, group_size=group_size)
        try:
            return runner(call)
        finally:
            close = getattr(inner, "close", None)
            if close is not None:  # flush a fixture recording's sink
                close()


def _worker(item: tuple) -> TaskRun:
    method, task_id, seed, profile, criterion, group_size, context = item
    return run_one(method, task_id, seed, profile, criterion, group_size,
                   context=context)


def prewarm_campaign_caches(task_ids: Iterable[str]) -> int:
    """Warm this process's caches with each task's golden artifacts.

    For every task id the golden RTL is parsed and elaborated into a
    design template, and the canonical (golden driver, golden RTL)
    pairing is elaborated too — the sources every validator matrix and
    AutoEval sweep of that task re-simulates.  Each task warms its own
    cache scope.  Returns the number of tasks warmed.

    Campaigns call this before creating a parallel pool (when the
    resolved context's ``warm_start`` flag is set), so pool creation
    snapshots a warm parent and spawn-started workers import the
    templates instead of rebuilding them per item; fork-started workers
    simply inherit them.  A task whose golden artifacts fail to build
    is skipped — the campaign item itself will surface the error.
    """
    from ..codegen import render_driver

    warmed = 0
    for task_id in task_ids:
        with use_task_scope(task_id):
            try:
                task = get_task(task_id)
                golden = task.golden_rtl()
                driver = render_driver(task, task.canonical_scenarios())
                design_template(golden, "top_module")
                _pair_template(golden, driver, "tb")
            except (KeyError, HdlError):  # pragma: no cover - defensive
                continue
            warmed += 1
    return warmed


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
def _accepts_keyword(progress, name: str) -> bool:
    """Does ``progress`` accept keyword ``name``?"""
    try:
        signature = inspect.signature(progress)
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if (parameter.name == name
                and parameter.kind is not inspect.Parameter.VAR_POSITIONAL):
            return True
    return False


class _ProgressReporter:
    """Attempt- and skip-aware progress fan-out.

    A healed-pool retry reruns outstanding items, which used to replay
    indices from 1 into the caller's callback — a monotonicity break
    across attempts.  Callbacks that accept an ``attempt`` keyword get
    every replay labelled with the attempt number; legacy
    three-argument callbacks see each index at most once (a high-water
    mark across attempts), keeping their view strictly monotonic.

    Store-satisfied items (a resumed campaign's skipped work) count as
    completed work: they are reported through the same callback, in
    item order, before any computation starts, so ``index``/``total``
    always measure real campaign progress.  Callbacks additionally
    accepting a ``skipped`` keyword can tell a store hit from a
    computed result.
    """

    def __init__(self, progress, total: int):
        self._progress = progress
        self._total = total
        self._attempt_aware = (progress is not None
                               and _accepts_keyword(progress, "attempt"))
        self._skip_aware = (progress is not None
                            and _accepts_keyword(progress, "skipped"))
        self._high_water = 0

    def report(self, index: int, run: TaskRun, attempt: int,
               skipped: bool = False) -> None:
        if self._progress is None:
            return
        if self._attempt_aware:
            kwargs = {"attempt": attempt}
            if self._skip_aware:
                kwargs["skipped"] = skipped
            self._progress(index, self._total, run, **kwargs)
        elif index > self._high_water:
            self._high_water = index
            self._progress(index, self._total, run)


def campaign_items(config: CampaignConfig,
                   context: SimContext | None = None) -> list[tuple]:
    """The campaign's work items, in canonical (reporting) order.

    Each item tuple is positionally compatible with
    :func:`repro.eval.store.store_key`, so ``store_key(*item)`` is the
    item's persistent identity.
    """
    if context is None:
        context = config.resolved_context()
    return [(method, task_id, seed, config.profile_name,
             config.criterion_name, config.group_size, context)
            for method in config.methods
            for seed in config.seeds
            for task_id in config.task_ids]


def _resolve_store(context: SimContext,
                   store: CampaignStore | None) -> CampaignStore | None:
    """An explicit ``store`` argument wins; otherwise the context's
    ``store_dir`` knob (seeded from ``REPRO_STORE_DIR``) opens one;
    otherwise the campaign runs store-less."""
    if store is not None:
        return store
    if context.store_dir:
        return CampaignStore(context.store_dir)
    return None


def run_campaign(config: CampaignConfig, progress=None, *,
                 store: CampaignStore | None = None,
                 resume: bool = False) -> CampaignResult:
    """Run the full campaign, optionally over the shared process pool.

    Parallel campaigns draw workers from the persistent simulation pool
    (:func:`repro.core.simulation.get_sim_pool`), so consecutive
    campaigns — and interleaved batch simulation calls — reuse the same
    worker processes and their warm caches instead of paying a pool
    spin-up per run.  Every work item carries the campaign's resolved
    :class:`SimContext`; its ``start_method`` / ``warm_start`` knobs
    select how the pool spawns workers and whether the campaign
    pre-warms them (see :func:`prewarm_campaign_caches`).

    ``progress`` is called as ``progress(index, total, run)`` after each
    completed item; pass a callback accepting an ``attempt`` keyword to
    also observe healed-pool retries, and a ``skipped`` keyword to tell
    store hits from computed results (see :class:`_ProgressReporter`).

    With a ``store`` (explicit argument, or opened from the resolved
    context's ``store_dir`` / ``REPRO_STORE_DIR``), every completed item
    is persisted immediately — a killed campaign loses at most the item
    in flight.  ``resume=True`` additionally boots the caches from the
    store's co-located snapshot (if one was saved) and answers
    already-stored items without resimulating them; hits are reported
    through ``progress`` first (with ``skipped=True``) and counted in
    ``CampaignResult.store_hits``.  A healed-pool retry with a store
    keeps completed items instead of replaying the whole campaign.
    """
    context = config.resolved_context()
    items = campaign_items(config, context)
    store = _resolve_store(context, store)

    result = CampaignResult(config)
    reporter = _ProgressReporter(progress, len(items))
    runs: list[TaskRun | None] = [None] * len(items)
    completed = 0

    if store is not None and resume:
        for index, item in enumerate(items):
            hit = store.get(store_key(*item))
            if hit is not None:
                runs[index] = hit
                completed += 1
                reporter.report(completed, hit, attempt=0, skipped=True)
        if completed < len(items):
            # Boot warm for the outstanding work; a fully
            # store-satisfied resume skips the import entirely.
            snapshot = store.load_snapshot()
            if snapshot is not None:
                with use_context(context):
                    caches.import_snapshot(snapshot)
    if store is not None:
        result.store_hits = completed
        result.store_misses = len(items) - completed

    def record(index: int, run: TaskRun, attempt: int = 0) -> None:
        nonlocal completed
        runs[index] = run
        if store is not None:
            store.put(store_key(*items[index]), run)
        completed += 1
        reporter.report(completed, run, attempt)

    pending = [index for index in range(len(items)) if runs[index] is None]
    n_jobs = config.n_jobs or 1
    if store is not None and pending and context.warm_start:
        # Leave the co-located warm-boot artifact *before* computing:
        # a campaign killed mid-flight resumes from golden templates,
        # not from nothing.  Saved post-prewarm, the snapshot carries
        # only the goldens — small to load, everything a resumed run
        # can actually reuse.
        with use_context(context):
            prewarm_campaign_caches(config.task_ids)
            store.save_snapshot(caches.export_snapshot())
    if not pending:
        pass  # fully store-satisfied: nothing to simulate
    elif n_jobs > 1 and is_live_backend(context.llm_backend):
        # Live-backend items are I/O-bound (the process waits on
        # sockets, not simulations) and their clients hold locks and
        # connections that cannot cross a process boundary: fan out on
        # threads instead of the sim pool.  Wire concurrency stays
        # bounded by the backends' global in-flight cap regardless of
        # n_jobs.
        for offset, run in enumerate(
                iter_fan_out(_worker, [items[index] for index in pending],
                             max_workers=n_jobs)):
            record(pending[offset], run)
    elif n_jobs > 1:
        # Pre-warm the parent's caches from the task list, so the pool
        # created below ships (spawn) or forks (fork) warm state to its
        # workers instead of every worker rebuilding the same golden
        # templates per item.
        if context.warm_start:
            with use_context(context):
                prewarm_campaign_caches(config.task_ids)
        # A killed worker breaks the shared executor, and a concurrent
        # get_sim_pool grow request can shut it down mid-map (surfacing
        # as RuntimeError) — the same pair _pool_map recovers from.
        # Heal the pool and rerun once; a genuine worker error simply
        # re-raises from the retry.
        for attempt in (0, 1):
            try:
                pool = get_sim_pool(n_jobs,
                                    start_method=context.start_method,
                                    warm_start=context.warm_start)
                if store is None:
                    # Store-less semantics (unchanged): a healed pool
                    # replays the whole campaign, each attempt
                    # reporting indices from 1.
                    for index, run in enumerate(pool.map(_worker, items,
                                                         chunksize=4)):
                        runs[index] = run
                        reporter.report(index + 1, run, attempt)
                else:
                    # With a store, completed items survived the break
                    # (they were persisted as they finished): only
                    # outstanding items replay, and the completed count
                    # stays monotonic across the heal.
                    todo = [index for index in pending
                            if runs[index] is None]
                    for offset, run in enumerate(
                            pool.map(_worker,
                                     [items[index] for index in todo],
                                     chunksize=4)):
                        record(todo[offset], run, attempt)
                break
            except (BrokenProcessPool, RuntimeError):
                shutdown_sim_pool(wait=False)
                if attempt:
                    raise
    else:
        for index in pending:
            record(index, _worker(items[index]))

    result.runs = [run for run in runs if run is not None]
    return result


# ----------------------------------------------------------------------
# Shard coordinator
# ----------------------------------------------------------------------
def _shard_worker(payload: tuple) -> tuple[int, int]:
    """One shard: open the shared store, boot warm from its snapshot
    (``resume=True`` imports it before the first item), run the task
    slice serially, persist every completed item.  Returns the shard's
    (store_hits, store_misses) pair for the coordinator's totals."""
    config, store_dir = payload
    store = CampaignStore(store_dir)
    result = run_campaign(config, store=store, resume=True)
    return result.store_hits, result.store_misses


def run_sharded_campaign(config: CampaignConfig, shards: int,
                         store: CampaignStore | None = None,
                         progress=None) -> CampaignResult:
    """Fan the campaign's task list out over ``shards`` worker
    processes sharing one persistent store.

    The coordinator pre-warms its caches (when the resolved context's
    ``warm_start`` flag is set), saves a
    :class:`~repro.core.caches.CacheSnapshot` into the store, and
    round-robins task slices to fresh worker processes; each worker
    imports the snapshot before its first item (via
    ``run_campaign(..., resume=True)``), runs its slice serially, and
    persists every completed item.  The final
    :class:`CampaignResult` is assembled from the store in canonical
    item order, so reports are identical to an unsharded run.
    ``store_hits`` / ``store_misses`` aggregate the workers' counters —
    a resumed sharded campaign skips already-stored items exactly like
    an unsharded resume.

    A store is required (explicit argument, the context's
    ``store_dir``, or ``REPRO_STORE_DIR``): it is the only channel
    results travel back through.  Raises :class:`StoreError` without
    one, or if a worker exits leaving its slice incomplete.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    context = config.resolved_context()
    store = _resolve_store(context, store)
    if store is None:
        raise StoreError(
            "sharded campaigns need a persistent store: pass store=, "
            "set the context's store_dir, or export REPRO_STORE_DIR")
    if shards == 1:
        return run_campaign(config, progress, store=store, resume=True)

    with use_context(context):
        if context.warm_start:
            prewarm_campaign_caches(config.task_ids)
        store.save_snapshot(caches.export_snapshot())

    slices = [config.task_ids[shard::shards] for shard in range(shards)]
    payloads = [(replace(config, task_ids=chunk, n_jobs=1, engine="",
                         context=context), str(store.root))
                for chunk in slices if chunk]
    mp_context = multiprocessing.get_context(
        _resolve_start_method(context.start_method))
    hits = misses = 0
    with ProcessPoolExecutor(max_workers=len(payloads),
                             mp_context=mp_context) as executor:
        for shard_hits, shard_misses in executor.map(_shard_worker,
                                                     payloads):
            hits += shard_hits
            misses += shard_misses

    items = campaign_items(config, context)
    result = CampaignResult(config, store_hits=hits, store_misses=misses)
    reporter = _ProgressReporter(progress, len(items))
    for index, item in enumerate(items):
        run = store.get(store_key(*item))
        if run is None:
            raise StoreError(
                f"shard workers left item unwritten: method={item[0]!r} "
                f"task={item[1]!r} seed={item[2]!r}")
        result.runs.append(run)
        reporter.report(index + 1, run, attempt=0)
    return result


def campaign_jobs_from_env(default: int = 1) -> int:
    """Resolve worker count from the active context / ``REPRO_JOBS``.

    Delegates to :func:`repro.hdl.context.resolve_jobs`: an active
    context's ``jobs`` wins; otherwise ``REPRO_JOBS`` (``0`` = all
    cores, malformed values warn at seeding time and fall back) applies
    when set, else ``default``.
    """
    return resolve_jobs(default)
