"""Campaign runner: methods x tasks x seeds -> evaluated results.

Reproduces the paper's experimental protocol: each method is applied to
every task, the experiment is repeated over several seeds ("we repeated
each experiment five times"), and every produced testbench is graded with
AutoEval.

Methods are pluggable: :func:`run_one` dispatches through the
:mod:`repro.eval.methods` registry, so a new strategy registered with
:func:`register_method` / :func:`campaign_method` runs through campaigns
and the CLI without touching this module.

Work items are referenced by ids (task ids, profile names) so campaigns
can fan out over a process pool — TaskSpec objects hold closures and are
deliberately never pickled.  Each item also carries the resolved
:class:`~repro.hdl.context.SimContext`, activated in whichever process
executes the item, so engine/lexer/limit choices neither depend on pool
workers' own defaults nor leak between serial items.
"""

from __future__ import annotations

import inspect
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..core.caches import use_task_scope
from ..core.simulation import (design_template, get_sim_pool,
                               shutdown_sim_pool, _pair_template)
from ..core.validator import CRITERIA, DEFAULT_CRITERION
from ..hdl.context import (SimContext, current_context, resolve_jobs,
                           use_context)
from ..hdl.errors import HdlError
from ..llm.backends import is_live_backend, iter_fan_out, resolve_llm_client
from ..llm.base import MeteredClient, UsageMeter
from ..problems.dataset import get_task, load_dataset
from .golden import golden_artifacts
# The method registry (and TaskRun, which runners return) lives in
# repro.eval.methods; re-exported here (redundant-alias form) because
# this module is the historical import point for campaign types.
from .methods import ALL_METHODS as ALL_METHODS
from .methods import METHOD_AUTOBENCH as METHOD_AUTOBENCH
from .methods import METHOD_BASELINE as METHOD_BASELINE
from .methods import METHOD_CORRECTBENCH as METHOD_CORRECTBENCH
from .methods import MethodCall as MethodCall
from .methods import TaskRun as TaskRun
from .methods import campaign_method as campaign_method
from .methods import get_method
from .methods import register_method as register_method
from .methods import registered_methods as registered_methods
from .methods import unregister_method as unregister_method


@dataclass(frozen=True)
class CampaignConfig:
    task_ids: tuple[str, ...]
    seeds: tuple[int, ...] = (0,)
    profile_name: str = "gpt-4o"
    criterion_name: str = DEFAULT_CRITERION.name
    methods: tuple[str, ...] = ALL_METHODS
    group_size: int = 20
    n_jobs: int = 1
    engine: str = ""  # legacy knob; prefer ``context``
    context: SimContext | None = None  # None = the caller's active context

    def __post_init__(self):
        for method in self.methods:
            get_method(method)  # raises ValueError listing the registry

    def resolved_context(self) -> SimContext:
        """The context campaign items will run under."""
        context = (self.context if self.context is not None
                   else current_context())
        if self.engine:
            context = context.evolve(engine=self.engine)
        return context


@dataclass
class CampaignResult:
    config: CampaignConfig
    runs: list[TaskRun] = field(default_factory=list)

    def of_method(self, method: str) -> list[TaskRun]:
        return [run for run in self.runs if run.method == method]

    def of(self, method: str, seed: int) -> list[TaskRun]:
        return [run for run in self.runs
                if run.method == method and run.seed == seed]


def default_config(task_ids: Iterable[str] | None = None,
                   seeds: Sequence[int] = (0,), **overrides,
                   ) -> CampaignConfig:
    if task_ids is None:
        task_ids = [task.task_id for task in load_dataset()]
    return CampaignConfig(task_ids=tuple(task_ids), seeds=tuple(seeds),
                          **overrides)


# ----------------------------------------------------------------------
# Single work item (also the process-pool worker)
# ----------------------------------------------------------------------
def run_one(method: str, task_id: str, seed: int,
            profile_name: str = "gpt-4o",
            criterion_name: str = DEFAULT_CRITERION.name,
            group_size: int = 20, engine: str = "",
            context: SimContext | None = None) -> TaskRun:
    """Run one registered method on one (task, seed) item.

    The item executes under ``context`` (default: the caller's active
    context) via :func:`use_context`, so the configuration applies in
    whichever process runs it and is restored afterwards — serial
    campaigns cannot leak an engine choice into later work.

    The model client resolves through
    :func:`repro.llm.backends.resolve_llm_client`: the context's
    ``llm_backend`` selects the synthetic tier (the default), a live
    adapter stack, or fixture record/replay — campaigns, the CLI, and
    the service all inherit the choice through this one point.
    """
    runner = get_method(method)
    if context is None:
        context = current_context()
    if engine:  # legacy per-call string; folded into the context
        context = context.evolve(engine=engine)
    # The task scope gives this item its own template-cache bucket, so
    # one task's mutant churn cannot evict another's warm templates
    # (see repro.core.caches.ScopedLruCache).
    with use_context(context), use_task_scope(task_id):
        task = get_task(task_id)
        criterion = CRITERIA[criterion_name]
        meter = UsageMeter()
        inner = resolve_llm_client(profile_name, seed, context=context,
                                   task_id=task_id, method=method)
        client = MeteredClient(inner, meter)
        call = MethodCall(method=method, task=task, seed=seed,
                          client=client, meter=meter,
                          golden=golden_artifacts(task_id),
                          criterion=criterion, group_size=group_size)
        try:
            return runner(call)
        finally:
            close = getattr(inner, "close", None)
            if close is not None:  # flush a fixture recording's sink
                close()


def _worker(item: tuple) -> TaskRun:
    method, task_id, seed, profile, criterion, group_size, context = item
    return run_one(method, task_id, seed, profile, criterion, group_size,
                   context=context)


def prewarm_campaign_caches(task_ids: Iterable[str]) -> int:
    """Warm this process's caches with each task's golden artifacts.

    For every task id the golden RTL is parsed and elaborated into a
    design template, and the canonical (golden driver, golden RTL)
    pairing is elaborated too — the sources every validator matrix and
    AutoEval sweep of that task re-simulates.  Each task warms its own
    cache scope.  Returns the number of tasks warmed.

    Campaigns call this before creating a parallel pool (when the
    resolved context's ``warm_start`` flag is set), so pool creation
    snapshots a warm parent and spawn-started workers import the
    templates instead of rebuilding them per item; fork-started workers
    simply inherit them.  A task whose golden artifacts fail to build
    is skipped — the campaign item itself will surface the error.
    """
    from ..codegen import render_driver

    warmed = 0
    for task_id in task_ids:
        with use_task_scope(task_id):
            try:
                task = get_task(task_id)
                golden = task.golden_rtl()
                driver = render_driver(task, task.canonical_scenarios())
                design_template(golden, "top_module")
                _pair_template(golden, driver, "tb")
            except (KeyError, HdlError):  # pragma: no cover - defensive
                continue
            warmed += 1
    return warmed


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
def _wants_attempt(progress) -> bool:
    """Does ``progress`` accept an ``attempt`` keyword?"""
    try:
        signature = inspect.signature(progress)
    except (TypeError, ValueError):  # builtins, odd callables
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if (parameter.name == "attempt"
                and parameter.kind is not inspect.Parameter.VAR_POSITIONAL):
            return True
    return False


class _ProgressReporter:
    """Attempt-aware progress fan-out.

    A healed-pool retry reruns every item, which used to replay indices
    from 1 into the caller's callback — a monotonicity break across
    attempts.  Callbacks that accept an ``attempt`` keyword now get the
    full replay labelled with the attempt number; legacy three-argument
    callbacks see each index at most once (a high-water mark across
    attempts), keeping their view strictly monotonic.
    """

    def __init__(self, progress, total: int):
        self._progress = progress
        self._total = total
        self._attempt_aware = (progress is not None
                               and _wants_attempt(progress))
        self._high_water = 0

    def report(self, index: int, run: TaskRun, attempt: int) -> None:
        if self._progress is None:
            return
        if self._attempt_aware:
            self._progress(index, self._total, run, attempt=attempt)
        elif index > self._high_water:
            self._high_water = index
            self._progress(index, self._total, run)


def run_campaign(config: CampaignConfig, progress=None) -> CampaignResult:
    """Run the full campaign, optionally over the shared process pool.

    Parallel campaigns draw workers from the persistent simulation pool
    (:func:`repro.core.simulation.get_sim_pool`), so consecutive
    campaigns — and interleaved batch simulation calls — reuse the same
    worker processes and their warm caches instead of paying a pool
    spin-up per run.  Every work item carries the campaign's resolved
    :class:`SimContext`; its ``start_method`` / ``warm_start`` knobs
    select how the pool spawns workers and whether the campaign
    pre-warms them (see :func:`prewarm_campaign_caches`).

    ``progress`` is called as ``progress(index, total, run)`` after each
    completed item; pass a callback accepting an ``attempt`` keyword to
    also observe healed-pool retries (see :class:`_ProgressReporter`).
    """
    context = config.resolved_context()
    items = [(method, task_id, seed, config.profile_name,
              config.criterion_name, config.group_size, context)
             for method in config.methods
             for seed in config.seeds
             for task_id in config.task_ids]

    result = CampaignResult(config)
    reporter = _ProgressReporter(progress, len(items))
    n_jobs = config.n_jobs or 1
    if n_jobs > 1 and is_live_backend(context.llm_backend):
        # Live-backend items are I/O-bound (the process waits on
        # sockets, not simulations) and their clients hold locks and
        # connections that cannot cross a process boundary: fan out on
        # threads instead of the sim pool.  Wire concurrency stays
        # bounded by the backends' global in-flight cap regardless of
        # n_jobs.
        for index, run in enumerate(
                iter_fan_out(_worker, items, max_workers=n_jobs)):
            result.runs.append(run)
            reporter.report(index + 1, run, attempt=0)
    elif n_jobs > 1:
        # Pre-warm the parent's caches from the task list, so the pool
        # created below ships (spawn) or forks (fork) warm state to its
        # workers instead of every worker rebuilding the same golden
        # templates per item.
        if context.warm_start:
            with use_context(context):
                prewarm_campaign_caches(config.task_ids)
        # A killed worker breaks the shared executor, and a concurrent
        # get_sim_pool grow request can shut it down mid-map (surfacing
        # as RuntimeError) — the same pair _pool_map recovers from.
        # Heal the pool and rerun once; a genuine worker error simply
        # re-raises from the retry.
        for attempt in (0, 1):
            del result.runs[:]
            try:
                pool = get_sim_pool(n_jobs,
                                    start_method=context.start_method,
                                    warm_start=context.warm_start)
                for index, run in enumerate(pool.map(_worker, items,
                                                     chunksize=4)):
                    result.runs.append(run)
                    reporter.report(index + 1, run, attempt)
                break
            except (BrokenProcessPool, RuntimeError):
                shutdown_sim_pool(wait=False)
                if attempt:
                    raise
    else:
        for index, item in enumerate(items):
            run = _worker(item)
            result.runs.append(run)
            reporter.report(index + 1, run, attempt=0)
    return result


def campaign_jobs_from_env(default: int = 1) -> int:
    """Resolve worker count from the active context / ``REPRO_JOBS``.

    Delegates to :func:`repro.hdl.context.resolve_jobs`: an active
    context's ``jobs`` wins; otherwise ``REPRO_JOBS`` (``0`` = all
    cores, malformed values warn at seeding time and fall back) applies
    when set, else ``default``.
    """
    return resolve_jobs(default)
