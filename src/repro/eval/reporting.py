"""Render campaign results in the paper's table/figure formats.

Every renderer returns plain text shaped like the corresponding table or
figure of the paper, so benchmark output can be compared side by side
with the published numbers (recorded in ``EXPERIMENTS.md``).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..util import format_ratio
from .campaign import (ALL_METHODS, METHOD_AUTOBENCH, METHOD_BASELINE,
                       METHOD_CORRECTBENCH, CampaignResult)
from .metrics import (GROUPS, LEVELS, contribution_stats, level_breakdown,
                      level_stat, mean_usage)

_METHOD_LABELS = {
    METHOD_CORRECTBENCH: "CorrectBench",
    METHOD_AUTOBENCH: "AutoBench",
    METHOD_BASELINE: "Baseline",
}


def render_table1(result: CampaignResult,
                  methods: Sequence[str] = ALL_METHODS) -> str:
    """Table I: main results (ratios and mean pass counts)."""
    lines = ["TABLE I — MAIN RESULTS", ""]
    header = (f"{'Group':<7}{'Metric':<8}"
              + "".join(f"{_METHOD_LABELS[m]:>15}" for m in methods)
              + "   |"
              + "".join(f"{_METHOD_LABELS[m][:9] + ' #':>12}"
                        for m in methods))
    lines.append(header)
    lines.append("-" * len(header))
    for group in GROUPS:
        for level in LEVELS:
            stats = [level_stat(result, method, group, level)
                     for method in methods]
            group_label = (f"{group}"
                           f"({stats[0].group_size})" if level == LEVELS[0]
                           else "")
            row = (f"{group_label:<7}{level.label:<8}"
                   + "".join(f"{format_ratio(s.ratio):>15}"
                             for s in stats)
                   + "   |"
                   + "".join(f"{s.mean_count:>12.1f}" for s in stats))
            lines.append(row)
        lines.append("")
    return "\n".join(lines)


def render_table2() -> str:
    """Table II: the AutoEval criteria definitions."""
    return "\n".join([
        "TABLE II — AUTOEVAL CRITERIA",
        "",
        f"{'Type':<8}Definition",
        "-" * 64,
        f"{'Failed':<8}codes have syntax errors",
        f"{'Eval0':<8}codes have no syntax error",
        f"{'Eval1':<8}passed Eval0; report 'Passed' with the golden RTL "
        "as DUT",
        f"{'Eval2':<8}passed Eval1; same report as the golden testbench "
        "on >= 80% of the mutant DUTs",
    ])


def render_table3(result: CampaignResult) -> str:
    """Table III: validator / corrector contribution decomposition."""
    lines = ["TABLE III — CONTRIBUTIONS OF VALIDATOR AND CORRECTOR", ""]
    header = (f"{'Group':<7}{'CorrectBench':>13}{'AutoBench':>11}"
              f"{'Gain':>8}{'Val.':>8}{'Corr.':>8}")
    lines.append(header)
    lines.append("-" * len(header))
    for stat in contribution_stats(result):
        lines.append(
            f"{stat.group:<7}{stat.correctbench:>13.1f}"
            f"{stat.autobench:>11.1f}{stat.gain:>8.1f}"
            f"{stat.validator:>8.1f}{stat.corrector:>8.1f}")
    return "\n".join(lines)


def render_fig6a(accuracies: Mapping[str, Mapping[str, float]]) -> str:
    """Fig. 6a: validation accuracy per criterion.

    ``accuracies`` maps criterion name -> {"total": .., "correct": ..,
    "wrong": ..}.
    """
    lines = ["FIG. 6a — VALIDATION ACCURACY AMONG VALIDATORS", ""]
    header = (f"{'Criterion':<12}{'Total':>10}{'CorrectTBs':>12}"
              f"{'WrongTBs':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, acc in accuracies.items():
        lines.append(f"{name:<12}{format_ratio(acc['total']):>10}"
                     f"{format_ratio(acc['correct']):>12}"
                     f"{format_ratio(acc['wrong']):>10}")
    return "\n".join(lines)


def render_fig6b(rows: Mapping[str, Mapping[str, float]]) -> str:
    """Fig. 6b: Eval2 ratio + token cost per validation criterion.

    ``rows`` maps criterion name -> {"eval2": ratio, "input_tokens": ..,
    "output_tokens": ..} (tokens per task).
    """
    lines = ["FIG. 6b — CORRECTBENCH PERFORMANCE PER CRITERION", ""]
    header = (f"{'Criterion':<12}{'Eval2':>9}{'In tok/task':>13}"
              f"{'Out tok/task':>14}")
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        lines.append(
            f"{name:<12}{format_ratio(row['eval2']):>9}"
            f"{row['input_tokens']:>13.0f}{row['output_tokens']:>14.0f}")
    return "\n".join(lines)


def campaign_provenance(result: CampaignResult) -> str:
    """Where a campaign's model responses came from.

    Derived from the resolved context's ``llm_backend``: the synthetic
    profiles (the deterministic default), recorded fixtures, or a live
    backend — so recorded and simulated numbers are never conflated in
    a report.
    """
    spec = result.config.resolved_context().llm_backend
    if spec in ("", "synthetic"):
        return "synthetic profiles"
    if spec == "fixture":
        return "recorded fixtures"
    if spec.startswith("fixture+"):
        inner = spec.partition("+")[2]
        if inner == "synthetic":
            return "recorded fixtures (recording synthetic)"
        return f"recorded fixtures (recording via {inner})"
    return f"live backend: {spec}"


def render_fig7(results_by_model: Mapping[str, CampaignResult]) -> str:
    """Fig. 7: stacked Eval2/Eval1/Eval0/Failed bands per model/method.

    Each model row is labelled with its provenance
    (:func:`campaign_provenance`), so a figure mixing synthetic,
    fixture-replayed, and live campaigns reads unambiguously.
    """
    lines = ["FIG. 7 — PERFORMANCE OF CORRECTBENCH ON DIFFERENT LLMS", ""]
    for model_name, result in results_by_model.items():
        lines.append(f"{model_name}  [{campaign_provenance(result)}]")
        for method in ALL_METHODS:
            bands = level_breakdown(result, method)
            bar = _stacked_bar(bands)
            lines.append(
                f"  {_METHOD_LABELS[method]:<13} {bar}  "
                + "  ".join(f"{label}={format_ratio(value)}"
                            for label, value in bands.items()))
        lines.append("")
    return "\n".join(lines)


def _stacked_bar(bands: Mapping[str, float], width: int = 40) -> str:
    glyphs = {"Eval2": "#", "Eval1": "=", "Eval0": "-", "Failed": "."}
    bar = ""
    for label, glyph in glyphs.items():
        bar += glyph * round(bands.get(label, 0.0) * width)
    return f"|{bar:<{width}}|"[:width + 2]


def render_usage_summary(result: CampaignResult) -> str:
    lines = ["TOKEN USAGE PER TASK", ""]
    for method in ALL_METHODS:
        input_tokens, output_tokens = mean_usage(result, method)
        lines.append(f"  {_METHOD_LABELS[method]:<13} "
                     f"in={input_tokens:>9.0f}  out={output_tokens:>8.0f}")
    return "\n".join(lines)


def render_store_summary(result: CampaignResult) -> str:
    """How much of a campaign the persistent store answered.

    One line per counter: items skipped (store hits), items computed
    this run (store misses), and the total.  A campaign run without a
    store reports zero skipped and everything computed.
    """
    hits, misses = result.store_hits, result.store_misses
    if hits + misses == 0:  # store-less campaign: everything computed
        misses = len(result.runs)
    return "\n".join([
        "CAMPAIGN STORE",
        "",
        f"  skipped (store hits) {hits:>6}",
        f"  computed this run    {misses:>6}",
        f"  total items          {hits + misses:>6}",
    ])


def render_recovery_report(result: CampaignResult) -> str:
    """Recovery rate per fault class, with recovered-by-round-k curves.

    Covers every run carrying a ``fault_class`` (produced by the
    scenario packs in :mod:`repro.eval.scenarios`).  The curve gives the
    cumulative fraction of runs recovered within k validation rounds —
    how much budget each fault class costs, not only whether the agent
    got there eventually.
    """
    runs = [run for run in result.runs if run.fault_class]
    lines = ["RECOVERY SCENARIO PACKS — RECOVERY RATE PER FAULT CLASS",
             ""]
    if not runs:
        lines.append("(no fault-injected runs in this campaign)")
        return "\n".join(lines)
    header = (f"{'Fault class':<22}{'Runs':>6}{'Recovered':>11}"
              f"{'Rate':>9}   recovered-by-round-k")
    lines.append(header)
    lines.append("-" * len(header))
    fault_classes = []
    for run in runs:
        if run.fault_class not in fault_classes:
            fault_classes.append(run.fault_class)
    for fault_class in fault_classes:
        of_class = [run for run in runs
                    if run.fault_class == fault_class]
        recovered = [run for run in of_class if run.recovered]
        rate = len(recovered) / len(of_class)
        max_round = max((run.rounds for run in of_class), default=0)
        curve = []
        for k in range(1, max_round + 1):
            within = sum(1 for run in recovered
                         if run.recovery_round is not None
                         and run.recovery_round <= k)
            curve.append(f"k<={k}:{format_ratio(within / len(of_class))}")
        lines.append(
            f"{fault_class:<22}{len(of_class):>6}{len(recovered):>11}"
            f"{format_ratio(rate):>9}   " + "  ".join(curve))
    return "\n".join(lines)
