"""Verilog driver renderer.

The driver is the front half of the hybrid testbench (Fig. 3 of the
paper): it drives the DUT through the test scenarios and ``$fdisplay``-s
every check-point — the driven inputs followed by the DUT outputs — to a
dump file the Python checker consumes.

Fault injection: the synthetic LLM may request the realistic driver
mistakes observed in LLM-generated testbenches — sampling in the same
delta as the clock edge (a classic race), dropping a scenario, a stuck
input, or a forgotten clock initialisation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Sequence

from ..problems.model import Scenario, TaskSpec

DUMP_FILE = "results.txt"

_HEADER_STYLES = (
    "// Testbench generated for: {title}\n",
    "// Automatically generated testbench.\n// Task: {title}\n",
    "// === {title} : simulation driver ===\n",
    "/* Testbench driver for {title} */\n",
)


@dataclass(frozen=True)
class DriverFaults:
    """Functional faults the generator may inject into a driver."""

    late_sample: bool = False        # sample without settling (#1) delay
    drop_last_scenario: bool = False
    stuck_input: str | None = None   # this input is never re-assigned
    missing_clock_init: bool = False  # forget `clk = 0` (SEQ only)

    @property
    def any(self) -> bool:
        return (self.late_sample or self.drop_last_scenario
                or self.stuck_input is not None or self.missing_clock_init)


def _decl(kind: str, width: int, name: str) -> str:
    if width > 1:
        return f"    {kind} [{width - 1}:0] {name};"
    return f"    {kind} {name};"


def _vconst(width: int, value: int) -> str:
    return f"{width}'d{value & ((1 << width) - 1)}"


def render_driver(task: TaskSpec, plan: Sequence[Scenario],
                  faults: DriverFaults = DriverFaults(),
                  style_seed: int = 0) -> str:
    """Render the driver module ``tb`` for ``task`` over ``plan``."""
    driven = task.driven_ports
    outputs = task.output_ports
    clock = task.clock_port

    lines: list[str] = []
    header = _HEADER_STYLES[style_seed % len(_HEADER_STYLES)]
    lines.append(header.format(title=task.title).rstrip())
    lines.append("module tb();")
    if clock is not None:
        lines.append(_decl("reg", 1, clock.name))
    for port in driven:
        lines.append(_decl("reg", port.width, port.name))
    for port in outputs:
        lines.append(_decl("wire", port.width, port.name))
    lines.append("    integer file;")
    lines.append("    integer scenario;")
    lines.append("")
    conns = ", ".join(f".{p.name}({p.name})" for p in task.ports)
    lines.append(f"    top_module dut({conns});")
    lines.append("")
    if clock is not None:
        lines.append(f"    always #5 {clock.name} = ~{clock.name};")
        lines.append("")
    lines.append("    initial begin")
    lines.append(f'        file = $fopen("{DUMP_FILE}");')
    if clock is not None and not faults.missing_clock_init:
        lines.append(f"        {clock.name} = 1'b0;")

    fmt_parts = ["scenario: %d"]
    arg_parts = ["scenario"]
    for port in list(driven) + list(outputs):
        fmt_parts.append(f"{port.name} = %d")
        arg_parts.append(port.name)
    fmt = ", ".join(fmt_parts)
    args = ", ".join(arg_parts)

    effective = list(plan)
    if faults.drop_last_scenario and len(effective) > 1:
        # Under-covering drivers lose a whole block of trailing scenarios
        # (the classic "the model got bored" failure), not just one.
        keep = max(1, len(effective) - max(1, len(effective) // 3))
        effective = effective[:keep]

    stuck_done: set[str] = set()
    for scenario in effective:
        lines.append("")
        lines.append(f"        // Scenario {scenario.index}: "
                     f"{scenario.description}")
        lines.append(f"        scenario = {scenario.index};")
        for vector in scenario.vectors:
            for port in driven:
                if (faults.stuck_input == port.name
                        and port.name in stuck_done):
                    continue
                value = vector[port.name]
                lines.append(f"        {port.name} = "
                             f"{_vconst(port.width, value)};")
                stuck_done.add(port.name)
            if clock is None:
                lines.append(f'        #10 $fdisplay(file, "{fmt}", '
                             f"{args});")
            else:
                lines.append(f"        @(posedge {clock.name});")
                if not faults.late_sample:
                    lines.append("        #1;")
                lines.append(f'        $fdisplay(file, "{fmt}", {args});')
    lines.append("")
    lines.append("        $fclose(file);")
    lines.append("        $finish;")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_SCENARIO_COMMENT_RE = re.compile(
    r"//\s*Scenario\s+(\d+)\s*:\s*(.+)$", re.MULTILINE)


def parse_driver_scenarios(driver_src: str) -> list[tuple[int, str]]:
    """Extract ``(index, description)`` pairs from driver comments.

    This is how the pipeline recovers the scenario definitions from the
    LLM's driver response — the same information the corrector prompt
    includes (Section III-C: "the definition of each scenario").
    """
    found = []
    for match in _SCENARIO_COMMENT_RE.finditer(driver_src):
        found.append((int(match.group(1)), match.group(2).strip()))
    return found
