"""Scenario-listing rendering and parsing.

AutoBench's first stage asks the LLM for a list of test scenarios.  The
synthetic LLM renders the listing from the task's scenario plan; the
pipeline parses the reply back into (index, name, description) triples —
the same loop a production pipeline runs on free-text LLM output.
"""

from __future__ import annotations

import re
from typing import Sequence

from ..problems.model import Scenario

_LISTING_HEADER = "Test scenarios:"

_LINE_RE = re.compile(
    r"^\s*(\d+)\.\s*\[(?P<name>[^\]]+)\]\s*(?P<desc>.+)$")


def render_scenario_listing(plan: Sequence[Scenario]) -> str:
    """Render the numbered scenario listing (an LLM response body)."""
    lines = [_LISTING_HEADER]
    for scenario in plan:
        lines.append(
            f"{scenario.index}. [{scenario.name}] {scenario.description}")
    return "\n".join(lines)


def parse_scenario_listing(text: str) -> list[tuple[int, str, str]]:
    """Parse a scenario listing back into (index, name, description)."""
    out = []
    for line in text.splitlines():
        match = _LINE_RE.match(line)
        if match:
            out.append((int(match.group(1)), match.group("name").strip(),
                        match.group("desc").strip()))
    return out
