"""Python checker-core renderer.

The checker core is the "core code" of the paper's Python checker: a
``RefModel`` class that regenerates the reference output signals.  The
fixed interface around it — dump parsing, stepping, comparison, the
per-scenario report — is completed by the pipeline (the paper's code
standardisation stage does exactly this: "Only the core code needs to be
generated; the other codes, such as the fixed code interface, will be
completed by a Python script"), and lives in
:mod:`repro.core.checker_runtime`.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..problems.model import TaskSpec

_HEADER_STYLES = (
    '"""Reference checker core for: {title}."""\n\n',
    "# Python checker core (auto-generated)\n# Task: {title}\n\n",
    "# --- checker model for {title} ---\n\n",
)


def render_checker_core(task: TaskSpec,
                        params: Mapping[str, Any] | None = None,
                        style_seed: int = 0) -> str:
    """Render the checker core from the task's (possibly perturbed) params.

    ``params=None`` renders the golden core.  Passing a behavioural
    variant's parameter set renders a checker with that misconception —
    byte-for-byte plausible code whose reference outputs are wrong.
    """
    header = _HEADER_STYLES[style_seed % len(_HEADER_STYLES)]
    body = task.model_renderer(params if params is not None
                               else task.params)
    return header.format(title=task.title) + body
