"""Monolithic self-checking testbench renderer (the direct baseline).

The paper's baseline asks the LLM for a complete testbench in one shot.
Such testbenches hard-code the expected output values as literals — which
is exactly where hallucinated reference values end up.  The renderer
computes the expected values by *executing the provided checker-model
source* (golden or misconception-perturbed), so a faulty belief produces a
plausibly wrong but internally consistent testbench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..problems.model import Scenario, TaskSpec, load_ref_model


@dataclass(frozen=True)
class BaselineFaults:
    """Generation-quality knobs of the one-shot baseline testbench."""

    thin: bool = False            # keep only a couple of check-points
    missing_clock_init: bool = False

    @property
    def any(self) -> bool:
        return self.thin or self.missing_clock_init


def _vconst(width: int, value: int) -> str:
    return f"{width}'d{value & ((1 << width) - 1)}"


def render_baseline_tb(task: TaskSpec, plan: Sequence[Scenario],
                       model_source: str,
                       faults: BaselineFaults = BaselineFaults()) -> str:
    """Render a self-checking Verilog testbench with hard-coded expects.

    ``model_source`` is the checker-core the (synthetic) LLM believes in;
    its outputs become the literal expected values.
    """
    model = load_ref_model(model_source)
    driven = task.driven_ports
    outputs = task.output_ports
    clock = task.clock_port

    check_points: list[tuple[dict, dict]] = []
    for scenario in plan:
        for vector in scenario.vectors:
            expected = model.step(dict(vector))
            check_points.append(
                (dict(vector),
                 {p.name: int(expected[p.name]) & p.mask for p in outputs}))

    if faults.thin and len(check_points) > 3:
        stride = max(1, len(check_points) // 3)
        check_points = check_points[::stride][:3]

    lines = [f"// Self-checking testbench for: {task.title}",
             "module tb();"]
    if clock is not None:
        lines.append(f"    reg {clock.name};")
    for port in driven:
        rng = f" [{port.width - 1}:0]" if port.width > 1 else ""
        lines.append(f"    reg{rng} {port.name};")
    for port in outputs:
        rng = f" [{port.width - 1}:0]" if port.width > 1 else ""
        lines.append(f"    wire{rng} {port.name};")
    lines.append("    integer errors;")
    lines.append("")
    conns = ", ".join(f".{p.name}({p.name})" for p in task.ports)
    lines.append(f"    top_module dut({conns});")
    if clock is not None:
        lines.append(f"    always #5 {clock.name} = ~{clock.name};")
    lines.append("")
    lines.append("    initial begin")
    lines.append("        errors = 0;")
    if clock is not None and not faults.missing_clock_init:
        lines.append(f"        {clock.name} = 1'b0;")

    for index, (vector, expected) in enumerate(check_points, start=1):
        lines.append("")
        lines.append(f"        // Check {index}")
        for port in driven:
            lines.append(f"        {port.name} = "
                         f"{_vconst(port.width, vector[port.name])};")
        if clock is None:
            lines.append("        #10;")
        else:
            lines.append(f"        @(posedge {clock.name});")
            lines.append("        #1;")
        for port in outputs:
            want = _vconst(port.width, expected[port.name])
            lines.append(
                f"        if ({port.name} !== {want}) begin")
            lines.append("            errors = errors + 1;")
            lines.append(
                f'            $display("MISMATCH check {index}: '
                f'{port.name} = %d (expected %d)", {port.name}, {want});')
            lines.append("        end")

    lines.append("")
    lines.append("        if (errors == 0) begin")
    lines.append('            $display("ALL_TESTS_PASSED");')
    lines.append("        end else begin")
    lines.append('            $display("TESTS_FAILED: %d", errors);')
    lines.append("        end")
    lines.append("        $finish;")
    lines.append("    end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def baseline_verdict(stdout_lines: Sequence[str]) -> bool | None:
    """Parse the baseline TB's stdout into a pass verdict.

    Returns True/False, or None when the testbench produced no verdict
    (e.g. the clock never ran).
    """
    for line in stdout_lines:
        if "ALL_TESTS_PASSED" in line:
            return True
        if "TESTS_FAILED" in line:
            return False
    return None
