"""``repro.codegen`` — artifact renderers.

These functions turn a task + scenario plan into the concrete source
artifacts of the pipeline: the Verilog driver, the Python checker core, the
scenario listing text, and the baseline's monolithic self-checking
testbench.  Both the synthetic LLM (which emits them with injected faults)
and the golden-reference builder (which emits them pristine) render
through this module, so golden and generated artifacts share one source of
truth.
"""

from .baseline import BaselineFaults, render_baseline_tb
from .checker import render_checker_core
from .driver import (DriverFaults, parse_driver_scenarios, render_driver)
from .scenarios import (parse_scenario_listing, render_scenario_listing)

__all__ = [
    "BaselineFaults",
    "DriverFaults",
    "parse_driver_scenarios",
    "parse_scenario_listing",
    "render_baseline_tb",
    "render_checker_core",
    "render_driver",
    "render_scenario_listing",
]
