"""Mutant generation engine built on the AST operators."""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.parser import parse_source
from ..hdl.unparse import unparse_module
from ..util import derive_rng
from .operators import count_sites, mutate_module


@dataclass(frozen=True)
class Mutant:
    source: str
    description: str
    site: int


def generate_mutants(rtl_src: str, count: int, seed: object,
                     module_name: str = "top_module",
                     compile_check=None) -> list[Mutant]:
    """Derive up to ``count`` distinct single-site mutants of ``rtl_src``.

    ``compile_check`` is an optional ``str -> bool`` predicate; mutants
    that fail it are discarded (the dataset only ships compiling mutants).
    Deterministic in ``seed``.
    """
    module = parse_source(rtl_src).module(module_name)
    n_sites = count_sites(module)
    if n_sites == 0:
        return []

    rng = derive_rng("mutants", seed)
    order = list(range(n_sites))
    rng.shuffle(order)

    mutants: list[Mutant] = []
    seen = {rtl_src}
    for site in order:
        if len(mutants) >= count:
            break
        mutated, description = mutate_module(
            module, site, derive_rng("mutant-op", seed, site))
        source = unparse_module(mutated)
        if source in seen or not description:
            continue
        if compile_check is not None and not compile_check(source):
            continue
        seen.add(source)
        mutants.append(Mutant(source, description, site))

    # If single-site mutations ran out (tiny modules), stack two sites.
    attempt = 0
    while len(mutants) < count and attempt < 4 * count:
        attempt += 1
        site_a = rng.randrange(n_sites)
        site_b = rng.randrange(n_sites)
        step_rng = derive_rng("mutant-op2", seed, attempt)
        first, desc_a = mutate_module(module, site_a, step_rng)
        second, desc_b = mutate_module(first, site_b, step_rng)
        source = unparse_module(second)
        if source in seen or not (desc_a or desc_b):
            continue
        if compile_check is not None and not compile_check(source):
            continue
        seen.add(source)
        mutants.append(Mutant(source, f"{desc_a}; {desc_b}",
                              site_a * n_sites + site_b))
    return mutants


def random_mutation(rtl_src: str, seed: object,
                    module_name: str = "top_module") -> tuple[str, str]:
    """One random single-site mutation (used for imperfect-RTL noise).

    Returns ``(source, description)``; falls back to the original source
    when the module has no mutation sites.
    """
    module = parse_source(rtl_src).module(module_name)
    n_sites = count_sites(module)
    if n_sites == 0:
        return rtl_src, ""
    rng = derive_rng("random-mutation", seed)
    site = rng.randrange(n_sites)
    mutated, description = mutate_module(module, site, rng)
    return unparse_module(mutated), description
