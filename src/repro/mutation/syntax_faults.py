"""Verilog syntax-fault injection.

Models the syntax errors LLMs make in generated HDL.  Every corruption is
verified to actually break parsing (otherwise the next strategy is tried),
so the Eval0 bookkeeping stays truthful.
"""

from __future__ import annotations

import random
import re

from ..hdl.errors import VerilogSyntaxError
from ..hdl.parser import parse_source
from ..util import derive_rng


def _drop_semicolon(src: str, rng: random.Random) -> str | None:
    positions = [m.start() for m in re.finditer(";", src)]
    if not positions:
        return None
    pos = rng.choice(positions)
    return src[:pos] + src[pos + 1:]


def _typo_keyword(src: str, rng: random.Random) -> str | None:
    typos = {"endmodule": "endmodul", "begin": "begn", "assign": "asign",
             "always": "alway", "module": "modul"}
    present = [kw for kw in typos if kw in src]
    if not present:
        return None
    keyword = rng.choice(present)
    return src.replace(keyword, typos[keyword], 1)


def _unbalance_paren(src: str, rng: random.Random) -> str | None:
    positions = [m.start() for m in re.finditer(r"\)", src)]
    if not positions:
        return None
    pos = rng.choice(positions)
    return src[:pos] + src[pos + 1:]


def _drop_end(src: str, rng: random.Random) -> str | None:
    positions = [m.start() for m in re.finditer(r"\bend\b", src)]
    if not positions:
        return None
    pos = rng.choice(positions)
    return src[:pos] + src[pos + 3:]


_STRATEGIES = (_drop_semicolon, _typo_keyword, _unbalance_paren, _drop_end)


def _parses(src: str) -> bool:
    try:
        parse_source(src)
    except VerilogSyntaxError:
        return False
    except RecursionError:  # pragma: no cover - defensive
        return False
    return True


def inject_verilog_syntax_fault(src: str, seed: object) -> str:
    """Return a corrupted copy of ``src`` that fails to parse."""
    rng = derive_rng("vsyntax", seed)
    strategies = list(_STRATEGIES)
    rng.shuffle(strategies)
    for strategy in strategies:
        broken = strategy(src, rng)
        if broken is not None and not _parses(broken):
            return broken
    # Guaranteed fallback: dangling token soup at the end.
    return src + "\nmodule broken (\n"
