"""AST-level Verilog mutation operators.

Mutants serve two roles in the reproduction, both taken from the paper:

- **Eval2 DUTs** — the dataset ships mutants of each golden RTL; a
  testbench passes Eval2 when its pass/fail report agrees with the golden
  testbench's on >= 80% of them.
- **Imperfect-RTL diversity** — the validator's judge group mixes
  misconception variants (correlated errors) with random AST mutations
  (uncorrelated errors).

The walker enumerates mutation *sites* over a module, then rebuilds the
(frozen dataclass) tree with exactly one site rewritten.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable

from ..hdl import ast

# Binary operators and their plausible wrong twins.
_BIN_SWAPS = {
    "+": ("-",), "-": ("+",),
    "&": ("|", "^"), "|": ("&", "^"), "^": ("&", "|", "~^"),
    "~^": ("^",),
    "==": ("!=",), "!=": ("==",),
    "<": ("<=", ">"), "<=": ("<",), ">": (">=", "<"), ">=": (">",),
    "<<": (">>",), ">>": ("<<",), ">>>": (">>",),
    "&&": ("||",), "||": ("&&",),
}

# Reduction operators and their wrong twins.
_RED_SWAPS = {
    "&": ("|", "^"), "|": ("&", "^"), "^": ("&", "|"),
    "~&": ("~|",), "~|": ("~&",), "~^": ("^",),
}


@dataclass
class _Ctx:
    """Mutation cursor: apply the op at site index ``target``."""

    target: int
    rng: random.Random
    counter: int = 0
    applied: str = ""

    def hit(self) -> bool:
        hit = self.counter == self.target
        self.counter += 1
        return hit


# ----------------------------------------------------------------------
# Expression rewriting
# ----------------------------------------------------------------------
def _mut_expr(expr: ast.Expr, ctx: _Ctx) -> ast.Expr:
    if isinstance(expr, ast.Identifier):
        if ctx.hit():
            ctx.applied = f"operand {expr.name} inverted"
            return ast.Unary("~", expr)
        return expr
    if isinstance(expr, ast.Number):
        if expr.width != 1 or expr.val not in (0, 1):
            if ctx.hit():
                ctx.applied = f"literal {expr.val}"
                return _perturb_number(expr, ctx.rng)
        else:
            if ctx.hit():
                ctx.applied = f"bit constant {expr.val}"
                return replace(expr, val=1 - expr.val)
        return expr
    if isinstance(expr, ast.Unary):
        if expr.op in ("~", "!") and ctx.hit():
            ctx.applied = f"dropped unary {expr.op}"
            return _mut_expr(expr.operand, _Ctx(-1, ctx.rng))
        if expr.op in _RED_SWAPS and ctx.hit():
            new_op = ctx.rng.choice(_RED_SWAPS[expr.op])
            ctx.applied = f"reduction {expr.op} -> {new_op}"
            return replace(expr, op=new_op)
        return replace(expr, operand=_mut_expr(expr.operand, ctx))
    if isinstance(expr, ast.Binary):
        if expr.op in _BIN_SWAPS and ctx.hit():
            new_op = ctx.rng.choice(_BIN_SWAPS[expr.op])
            ctx.applied = f"operator {expr.op} -> {new_op}"
            return replace(expr, op=new_op)
        return replace(expr, left=_mut_expr(expr.left, ctx),
                       right=_mut_expr(expr.right, ctx))
    if isinstance(expr, ast.Ternary):
        if ctx.hit():
            ctx.applied = "ternary arms swapped"
            return replace(expr, then=expr.other, other=expr.then)
        return replace(expr, cond=_mut_expr(expr.cond, ctx),
                       then=_mut_expr(expr.then, ctx),
                       other=_mut_expr(expr.other, ctx))
    if isinstance(expr, ast.Concat):
        if len(expr.parts) >= 2 and ctx.hit():
            ctx.applied = "concatenation order reversed"
            return replace(expr, parts=tuple(reversed(expr.parts)))
        return replace(expr, parts=tuple(_mut_expr(p, ctx)
                                         for p in expr.parts))
    if isinstance(expr, ast.Replicate):
        return replace(expr, value=_mut_expr(expr.value, ctx))
    if isinstance(expr, ast.Index):
        return replace(expr, index=_mut_expr(expr.index, ctx))
    if isinstance(expr, ast.PartSelect):
        # Bounds must stay elaboration constants, so the only safe edit is
        # narrowing the select to its low bit (a plausible width mistake).
        if ctx.hit():
            ctx.applied = f"part select of {expr.base} narrowed"
            return ast.Index(expr.base, expr.lsb)
        return expr
    return expr


def _perturb_number(number: ast.Number, rng: random.Random) -> ast.Number:
    width = number.width or 32
    mask = (1 << width) - 1
    choices = [(number.val + 1) & mask, (number.val - 1) & mask,
               number.val ^ (1 << rng.randrange(width))]
    new_val = rng.choice([c for c in choices if c != number.val] or [0])
    return replace(number, val=new_val, xmask=0)


# ----------------------------------------------------------------------
# Statement rewriting
# ----------------------------------------------------------------------
def _mut_stmt(stmt: ast.Stmt, ctx: _Ctx) -> ast.Stmt:
    if isinstance(stmt, ast.Block):
        return replace(stmt, stmts=tuple(_mut_stmt(s, ctx)
                                         for s in stmt.stmts))
    if isinstance(stmt, ast.If):
        if ctx.hit():
            ctx.applied = "if condition negated"
            return replace(stmt, cond=ast.Unary("!", stmt.cond))
        return replace(stmt, cond=_mut_expr(stmt.cond, ctx),
                       then=_mut_stmt(stmt.then, ctx),
                       other=(_mut_stmt(stmt.other, ctx)
                              if stmt.other is not None else None))
    if isinstance(stmt, ast.Case):
        items = []
        for item in stmt.items:
            labels = tuple(_mut_expr(lbl, ctx) for lbl in item.labels)
            items.append(ast.CaseItem(labels, _mut_stmt(item.body, ctx)))
        return replace(stmt, subject=_mut_expr(stmt.subject, ctx),
                       items=tuple(items))
    if isinstance(stmt, (ast.BlockingAssign, ast.NonblockingAssign)):
        if ctx.hit():
            ctx.applied = "assignment dropped"
            return ast.NullStmt()
        return replace(stmt, value=_mut_expr(stmt.value, ctx))
    if isinstance(stmt, ast.For):
        return replace(stmt, body=_mut_stmt(stmt.body, ctx))
    if isinstance(stmt, (ast.While, ast.Repeat, ast.Forever)):
        return replace(stmt, body=_mut_stmt(stmt.body, ctx))
    if isinstance(stmt, ast.DelayStmt):
        return replace(stmt, stmt=(_mut_stmt(stmt.stmt, ctx)
                                   if stmt.stmt is not None else None))
    if isinstance(stmt, ast.EventControl):
        return replace(stmt, stmt=(_mut_stmt(stmt.stmt, ctx)
                                   if stmt.stmt is not None else None))
    return stmt


def _mut_item(item: ast.ModuleItem, ctx: _Ctx) -> ast.ModuleItem:
    if isinstance(item, ast.ContinuousAssign):
        return replace(item, value=_mut_expr(item.value, ctx))
    if isinstance(item, ast.AlwaysBlock):
        events = item.events
        if events:
            new_events = []
            for event in events:
                if event.edge in ("pos", "neg") and ctx.hit():
                    new_edge = "neg" if event.edge == "pos" else "pos"
                    ctx.applied = f"{event.edge}edge -> {new_edge}edge"
                    new_events.append(replace(event, edge=new_edge))
                else:
                    new_events.append(event)
            events = tuple(new_events)
        return replace(item, events=events, body=_mut_stmt(item.body, ctx))
    if isinstance(item, ast.InitialBlock):
        return replace(item, body=_mut_stmt(item.body, ctx))
    return item


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def count_sites(module: ast.Module) -> int:
    """Number of mutation sites in the module."""
    ctx = _Ctx(target=-1, rng=random.Random(0))
    for item in module.items:
        _mut_item(item, ctx)
    return ctx.counter


def mutate_module(module: ast.Module, site: int,
                  rng: random.Random) -> tuple[ast.Module, str]:
    """Rebuild ``module`` with the mutation at ``site`` applied.

    Returns the new module and a human-readable description of the edit.
    """
    ctx = _Ctx(target=site, rng=rng)
    items = tuple(_mut_item(item, ctx) for item in module.items)
    return replace(module, items=items), ctx.applied


MutationFilter = Callable[[str], bool]
