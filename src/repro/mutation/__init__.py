"""``repro.mutation`` — RTL mutants, syntax faults and literal faults."""

from .engine import Mutant, generate_mutants, random_mutation
from .python_faults import (inject_python_syntax_fault,
                            perturb_numeric_literal)
from .syntax_faults import inject_verilog_syntax_fault

__all__ = [
    "Mutant",
    "generate_mutants",
    "inject_python_syntax_fault",
    "inject_verilog_syntax_fault",
    "perturb_numeric_literal",
    "random_mutation",
]
