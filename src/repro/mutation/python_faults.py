"""Python syntax-fault injection for generated checker cores."""

from __future__ import annotations

import random
import re

from ..util import derive_rng


def _drop_colon(src: str, rng: random.Random) -> str | None:
    positions = [m.start() for m in re.finditer(r":\s*$", src, re.MULTILINE)]
    if not positions:
        return None
    pos = rng.choice(positions)
    return src[:pos] + src[pos + 1:]


def _unbalance_paren(src: str, rng: random.Random) -> str | None:
    positions = [m.start() for m in re.finditer(r"\)", src)]
    if not positions:
        return None
    pos = rng.choice(positions)
    return src[:pos] + src[pos + 1:]


def _bad_dedent(src: str, rng: random.Random) -> str | None:
    lines = src.splitlines()
    candidates = [i for i, line in enumerate(lines)
                  if line.startswith("        ") and line.strip()]
    if not candidates:
        return None
    index = rng.choice(candidates)
    lines[index] = lines[index][3:]
    return "\n".join(lines)


def _typo_def(src: str, rng: random.Random) -> str | None:
    if "def " not in src:
        return None
    return src.replace("def ", "dfe ", 1)


_STRATEGIES = (_drop_colon, _unbalance_paren, _bad_dedent, _typo_def)


def _compiles(src: str) -> bool:
    try:
        compile(src, "<fault-check>", "exec")
    except SyntaxError:
        return False
    return True


def inject_python_syntax_fault(src: str, seed: object) -> str:
    """Return a corrupted copy of ``src`` that fails to compile."""
    rng = derive_rng("pysyntax", seed)
    strategies = list(_STRATEGIES)
    rng.shuffle(strategies)
    for strategy in strategies:
        broken = strategy(src, rng)
        if broken is not None and not _compiles(broken):
            return broken
    return src + "\ndef broken(:\n"


_INT_RE = re.compile(r"(?<![\w.])(\d+)(?![\w.])")


def perturb_numeric_literal(src: str, seed: object) -> tuple[str, str]:
    """Perturb one integer literal in the source (a functional fault).

    Returns ``(new_source, description)``; the source is returned
    unchanged when it contains no integer literals.  The corrupted code
    still compiles — it is just wrong.
    """
    rng = derive_rng("pyliteral", seed)
    matches = [m for m in _INT_RE.finditer(src)]
    # Avoid touching the harmless literals 0/1 used as boolean returns
    # less often than wider constants.
    weighted = [m for m in matches if int(m.group(1)) > 1] or matches
    if not weighted:
        return src, ""
    match = rng.choice(weighted)
    value = int(match.group(1))
    delta = rng.choice((1, -1))
    new_value = max(0, value + delta)
    if new_value == value:
        new_value = value + 1
    new_src = src[:match.start()] + str(new_value) + src[match.end():]
    return new_src, f"literal {value} -> {new_value}"
