"""``correctbench`` command-line interface.

Subcommands:

- ``dataset``  — list the benchmark tasks or show one task's artifacts;
- ``run``      — run one method on one task and grade it with AutoEval;
- ``validate`` — generate a testbench and show its RS matrix + verdict;
- ``campaign`` — run a methods x tasks x seeds campaign, print Table I/III;
- ``trace``    — record, replay, or summarise correction traces
  (``trace record``, ``trace replay``, ``trace report``);
- ``serve``    — run the asyncio testbench-generation service
  (``serve --status`` queries a running server's telemetry endpoint).

``run``/``validate``/``campaign`` accept ``--engine`` and ``--lexer``,
and ``campaign`` additionally ``--start-method`` and
``--warm-start/--no-warm-start`` (worker-pool start method and
cache-snapshot warm-up) plus ``--store DIR`` / ``--resume`` /
``--shards N`` (persistent artifact store, kill-resume, and the shard
coordinator); the selections feed a
:class:`~repro.hdl.context.SimContext` activated around the command
(and shipped inside campaign work items), so no environment variable
is needed to pick an execution engine.  ``run`` and ``campaign``
dispatch through the campaign-method registry: a method registered
with :func:`repro.eval.register_method` before :func:`build_parser` is
called appears in ``--method`` choices automatically.
"""

from __future__ import annotations

import argparse
import sys

from .core import (CRITERIA, AutoBenchGenerator, DEFAULT_CRITERION,
                   ScenarioValidator)
from .eval import (default_config, evaluate, registered_methods,
                   render_recovery_report, render_store_summary,
                   render_table1, render_table3, render_usage_summary,
                   run_campaign, run_one, run_sharded_campaign)
from .hdl.context import (ENGINES, LEXERS, START_METHODS, current_context,
                          use_context, valid_llm_backend)
from .llm import MeteredClient, UsageMeter
from .problems import load_dataset, get_task


def _client(model: str, seed: int, context=None,
            task_id: str = "") -> MeteredClient:
    """A metered client honoring the context's ``llm_backend`` (the
    synthetic tier when none is selected)."""
    from .llm.backends import resolve_llm_client

    inner = resolve_llm_client(model, seed, context=context,
                               task_id=task_id)
    return MeteredClient(inner, UsageMeter())


def _backend_spec(value: str) -> str:
    if not valid_llm_backend(value):
        raise argparse.ArgumentTypeError(
            f"{value!r} is not a backend spec (synthetic, ollama, "
            f"openai, hf, fixture, or fixture+<name>)")
    return value


def _context(args):
    """The SimContext for this invocation: the ambient context evolved
    with whatever ``--engine`` / ``--lexer`` / ``--start-method`` /
    ``--warm-start`` / ``--backend`` selected."""
    overrides = {}
    if getattr(args, "engine", None):
        overrides["engine"] = args.engine
    if getattr(args, "lexer", None):
        overrides["lexer"] = args.lexer
    if getattr(args, "start_method", None):
        overrides["start_method"] = args.start_method
    if getattr(args, "warm_start", None) is not None:
        overrides["warm_start"] = args.warm_start
    if getattr(args, "trace_dir", None):
        overrides["trace_dir"] = args.trace_dir
    if getattr(args, "store", None):
        overrides["store_dir"] = args.store
    if getattr(args, "backend", None):
        overrides["llm_backend"] = args.backend
        # With a live backend, --model is the model id sent on the wire
        # (for the synthetic tier it stays the profile name).
        overrides["llm_model"] = args.model
    if getattr(args, "base_url", None):
        overrides["llm_base_url"] = args.base_url
    if getattr(args, "fixture_dir", None):
        overrides["llm_fixture_dir"] = args.fixture_dir
    return current_context().evolve(**overrides)


# ----------------------------------------------------------------------
def cmd_dataset(args) -> int:
    if args.task:
        task = get_task(args.task)
        print(f"# {task.task_id} [{task.kind}] {task.title}")
        print(f"# family={task.family} difficulty={task.difficulty}")
        print()
        print(task.spec_text)
        if args.show_rtl:
            print("--- golden RTL ---")
            print(task.golden_rtl())
        if args.show_checker:
            print("--- golden checker core ---")
            print(task.golden_model_source())
        return 0
    tasks = load_dataset()
    print(f"{len(tasks)} tasks "
          f"({sum(1 for t in tasks if t.kind == 'CMB')} CMB, "
          f"{sum(1 for t in tasks if t.kind == 'SEQ')} SEQ)")
    for task in tasks:
        print(f"  {task.task_id:<24} [{task.kind}] {task.title}")
    return 0


def cmd_run(args) -> int:
    run = run_one(args.method, args.task, seed=args.seed,
                  profile_name=args.model, criterion_name=args.criterion,
                  context=_context(args))
    if run.validated is not None:
        print(f"validated={run.validated} reboots={run.reboots} "
              f"corrections={run.corrections}")
    print(f"AutoEval: {run.level.label}")
    print(f"tokens: in={run.usage.input_tokens} "
          f"out={run.usage.output_tokens}")
    return 0


def cmd_validate(args) -> int:
    with use_context(_context(args)):
        task = get_task(args.task)
        client = _client(args.model, args.seed, task_id=args.task)
        testbench = AutoBenchGenerator(client, task).generate()
        validator = ScenarioValidator(client, task,
                                      CRITERIA[args.criterion])
        report = validator.validate(testbench)
        print(report.matrix.render_ascii())
        print()
        print(f"verdict: {'correct' if report.verdict else 'wrong'}"
              + (f"  ({report.note})" if report.note else ""))
        print(f"wrong={list(report.wrong)} correct={list(report.correct)} "
              f"uncertain={list(report.uncertain)}")
        grade = evaluate(testbench)
        print(f"AutoEval ground truth: {grade.level.label}")
    return 0


def cmd_campaign(args) -> int:
    task_ids = None
    if args.tasks:
        task_ids = [t.strip() for t in args.tasks.split(",")]
    elif args.limit:
        tasks = load_dataset()
        cmb = [t.task_id for t in tasks if t.kind == "CMB"]
        seq = [t.task_id for t in tasks if t.kind == "SEQ"]
        task_ids = cmb[:args.limit // 2] + seq[:args.limit - args.limit // 2]
    overrides = {}
    if args.methods:
        overrides["methods"] = tuple(
            m.strip() for m in args.methods.split(","))
    context = _context(args)
    config = default_config(
        task_ids=task_ids, seeds=tuple(range(args.seeds)),
        profile_name=args.model, criterion_name=args.criterion,
        n_jobs=args.jobs, context=context, **overrides)
    if (args.resume or args.shards > 1) and not context.store_dir:
        print("error: --resume/--shards need a store; pass --store DIR "
              "or set REPRO_STORE_DIR", file=sys.stderr)
        return 2
    if args.shards > 1:
        result = run_sharded_campaign(config, args.shards)
    else:
        result = run_campaign(config, resume=args.resume)
    if context.store_dir:
        # Store accounting goes to stderr so a resumed run's stdout
        # report stays byte-identical to an uninterrupted one (the CI
        # crash-fault job diffs them).
        print(render_store_summary(result), file=sys.stderr)
    if any(run.fault_class for run in result.runs):
        print(render_recovery_report(result))
        print()
    print(render_table1(result))
    print(render_table3(result))
    print()
    print(render_usage_summary(result))
    return 0


# ----------------------------------------------------------------------
def cmd_trace_record(args) -> int:
    from .core.agent import CorrectBenchWorkflow
    from .core.trace import JsonlTraceSink

    context = _context(args)
    if not args.out and not context.trace_dir:
        print("error: pass --out FILE or --trace-dir DIR", file=sys.stderr)
        return 2
    with use_context(context):
        task = get_task(args.task)
        client = _client(args.model, args.seed, task_id=args.task)
        sink = JsonlTraceSink(args.out) if args.out else None
        workflow = CorrectBenchWorkflow(
            client, task, CRITERIA[args.criterion], trace_sink=sink)
        try:
            result = workflow.run()
        finally:
            close = getattr(client.inner, "close", None)
            if close is not None:  # flush a fixture recording's sink
                close()
    print(f"recorded {task.task_id}: validated={result.validated} "
          f"corrections={result.corrections} reboots={result.reboots}")
    print(f"trace written under {args.out or context.trace_dir}")
    return 0


def cmd_trace_replay(args) -> int:
    from .core.trace import load_trace, replay_workflow

    trace = load_trace(args.trace)
    handoff = None
    if args.rounds is not None:
        handoff = _client(args.model, args.seed,
                          context=_context(args))
    with use_context(_context(args)):
        outcome = replay_workflow(trace, strict=not args.lenient,
                                  rounds=args.rounds, handoff=handoff)
    result = outcome.result
    print(f"replayed {trace.header['task_id']}: "
          f"validated={result.validated} "
          f"corrections={result.corrections} reboots={result.reboots}")
    if outcome.matches:
        print("round verdicts match the recording")
        return 0
    print(f"DIVERGED at round {outcome.diverged_round()}",
          file=sys.stderr)
    return 1


def cmd_trace_report(args) -> int:
    from .core.trace import load_trace

    trace = load_trace(args.trace)
    header = trace.header
    print(f"task={header['task_id']} model={header.get('model')} "
          f"seed={header.get('seed')} criterion={header.get('criterion')}")
    print(f"exchanges={len(trace.exchanges())} "
          f"rounds={len(trace.validations())}")
    for event in trace.validations():
        status = "PASS" if event["verdict"] else "fail"
        print(f"  round {event['round']}: {status} "
              f"wrong={event['wrong']} origin={event['origin']} "
              f"gen={event['generation_index']} "
              f"corr={event['correction_index']} "
              f"[{event['elapsed_ms']:.0f} ms, "
              f"{event['exchanges_so_far']} exchanges]"
              + (f" note={event['note']}" if event["note"] else ""))
    result = trace.result()
    if result is not None:
        print(f"result: validated={result['validated']} "
              f"gave_up={result['gave_up']} "
              f"corrections={result['corrections']} "
              f"reboots={result['reboots']} usage={result['usage']}")
    return 0


# ----------------------------------------------------------------------
def cmd_serve(args) -> int:
    import asyncio
    import json

    from .service import TestbenchService, service_config_from_env

    config = service_config_from_env()
    overrides = {name: getattr(args, name)
                 for name in ("host", "port", "queue_limit",
                              "batch_window_ms", "batch_max", "workers",
                              "drain_timeout")
                 if getattr(args, name) is not None}
    config = config.evolve(**overrides)

    if args.status:
        import urllib.error
        import urllib.request

        url = f"http://{config.host}:{config.port}/v1/status"
        try:
            with urllib.request.urlopen(url, timeout=5) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except (urllib.error.URLError, OSError) as exc:
            print(f"error: cannot reach {url}: {exc}", file=sys.stderr)
            return 1
        print(json.dumps(payload, indent=2))
        return 0

    context = _context(args)
    if args.jobs is not None:
        context = context.evolve(jobs=max(1, args.jobs))

    async def _serve() -> None:
        import contextlib
        import signal

        service = TestbenchService(config, context)
        await service.start()
        print(f"serving on http://{config.host}:{service.port} "
              f"(queue_limit={config.queue_limit} "
              f"batch_window_ms={config.batch_window_ms} "
              f"batch_max={config.batch_max} workers={config.workers} "
              f"sim_jobs={context.jobs}); Ctrl-C/SIGTERM drains and exits")
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        # SIGTERM must drain too: background shells (and CI steps) set
        # SIGINT to ignore for async children, so plain `kill` is the
        # operational stop signal.
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        serve_task = asyncio.ensure_future(service.serve_forever())
        stop_task = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait({serve_task, stop_task},
                               return_when=asyncio.FIRST_COMPLETED)
        except asyncio.CancelledError:
            pass
        finally:
            for task in (serve_task, stop_task):
                task.cancel()
            await asyncio.gather(serve_task, stop_task,
                                 return_exceptions=True)
            await service.shutdown(drain=True)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; drained in-flight work", file=sys.stderr)
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="correctbench",
        description="CorrectBench reproduction (DATE 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_dataset = sub.add_parser("dataset", help="list / show tasks")
    p_dataset.add_argument("--task", help="show one task")
    p_dataset.add_argument("--show-rtl", action="store_true")
    p_dataset.add_argument("--show-checker", action="store_true")
    p_dataset.set_defaults(func=cmd_dataset)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--model", default="gpt-4o")
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--criterion", default=DEFAULT_CRITERION.name,
                        choices=sorted(CRITERIA))
    common.add_argument("--engine", choices=ENGINES, default=None,
                        help="simulation engine (default: active context)")
    common.add_argument("--lexer", choices=LEXERS, default=None,
                        help="tokenizer implementation "
                             "(default: active context)")
    common.add_argument("--trace-dir", default=None, dest="trace_dir",
                        help="record correction traces (JSONL) into this "
                             "directory (default: REPRO_TRACE_DIR / off)")
    common.add_argument("--backend", type=_backend_spec, default=None,
                        help="LLM backend spec: synthetic (default), "
                             "ollama, openai, hf, fixture, or "
                             "fixture+<name> to record through a backend "
                             "(default: REPRO_LLM_BACKEND / synthetic); "
                             "with a live backend --model is the model "
                             "id sent on the wire")
    common.add_argument("--base-url", default=None, dest="base_url",
                        help="live backend endpoint override "
                             "(default: REPRO_LLM_BASE_URL / the "
                             "adapter's default)")
    common.add_argument("--fixture-dir", default=None, dest="fixture_dir",
                        help="directory fixture backends record to / "
                             "replay from "
                             "(default: REPRO_LLM_FIXTURE_DIR)")

    p_run = sub.add_parser("run", parents=[common],
                           help="run one method on one task")
    p_run.add_argument("task")
    p_run.add_argument("--method", default="correctbench",
                       choices=registered_methods())
    p_run.set_defaults(func=cmd_run)

    p_val = sub.add_parser("validate", parents=[common],
                           help="validate a generated TB (RS matrix)")
    p_val.add_argument("task")
    p_val.set_defaults(func=cmd_validate)

    p_camp = sub.add_parser("campaign", parents=[common],
                            help="run a methods x tasks x seeds campaign")
    p_camp.add_argument("--tasks", help="comma-separated task ids")
    p_camp.add_argument("--methods",
                        help="comma-separated registered method names "
                             "(default: the paper's three)")
    p_camp.add_argument("--limit", type=int, default=0,
                        help="balanced slice size (0 = full dataset)")
    p_camp.add_argument("--seeds", type=int, default=1)
    p_camp.add_argument("--jobs", type=int, default=1)
    p_camp.add_argument("--start-method", choices=START_METHODS,
                        default=None, dest="start_method",
                        help="worker-pool start method "
                             "(default: active context / platform)")
    p_camp.add_argument("--warm-start", action=argparse.BooleanOptionalAction,
                        default=None, dest="warm_start",
                        help="pre-warm pool workers with a cache snapshot "
                             "built from the task list "
                             "(default: active context, on)")
    p_camp.add_argument("--store", default=None,
                        help="persist every completed item into this "
                             "campaign artifact store directory "
                             "(default: REPRO_STORE_DIR / off)")
    p_camp.add_argument("--resume", action="store_true",
                        help="answer already-stored items from --store "
                             "without resimulating, booting caches from "
                             "its snapshot")
    p_camp.add_argument("--shards", type=int, default=1,
                        help="fan task slices out to this many worker "
                             "processes sharing the --store (1 = in-"
                             "process)")
    p_camp.set_defaults(func=cmd_campaign)

    p_serve = sub.add_parser(
        "serve",
        help="run the asyncio testbench-generation service")
    p_serve.add_argument("--host", default=None,
                         help="bind address (default: REPRO_SERVICE_HOST "
                              "/ 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="bind port, 0 = ephemeral "
                              "(default: REPRO_SERVICE_PORT / 8322)")
    p_serve.add_argument("--queue-limit", type=int, default=None,
                         dest="queue_limit",
                         help="admitted-but-unfinished request cap; "
                              "past it the server answers 429")
    p_serve.add_argument("--batch-window-ms", type=float, default=None,
                         dest="batch_window_ms",
                         help="micro-batch coalescing window "
                              "(0 disables windowing)")
    p_serve.add_argument("--batch-max", type=int, default=None,
                         dest="batch_max",
                         help="flush a batch window early at this many "
                              "jobs (1 disables coalescing)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="executor threads running simulate batches")
    p_serve.add_argument("--drain-timeout", type=float, default=None,
                         dest="drain_timeout",
                         help="max seconds shutdown waits for in-flight "
                              "work")
    p_serve.add_argument("--jobs", type=int, default=None,
                         help="sim process-pool fan-out per batch "
                              "(default: active context)")
    p_serve.add_argument("--engine", choices=ENGINES, default=None,
                         help="base simulation engine for requests that "
                              "don't override it")
    p_serve.add_argument("--lexer", choices=LEXERS, default=None,
                         help="base tokenizer for requests that don't "
                              "override it")
    p_serve.add_argument("--status", action="store_true",
                         help="query a running server's /v1/status "
                              "(uses --host/--port) and exit")
    p_serve.set_defaults(func=cmd_serve)

    p_trace = sub.add_parser(
        "trace", help="record / replay / summarise correction traces")
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_record = trace_sub.add_parser(
        "record", parents=[common],
        help="run the CorrectBench workflow on a task, recording a trace")
    p_record.add_argument("task")
    p_record.add_argument("--out", default=None,
                          help="trace file path (overrides --trace-dir)")
    p_record.set_defaults(func=cmd_trace_record)

    p_replay = trace_sub.add_parser(
        "replay", parents=[common],
        help="re-run a recorded trace and compare round verdicts")
    p_replay.add_argument("trace", help="path to a .trace.jsonl file")
    p_replay.add_argument("--lenient", action="store_true",
                          help="match exchanges by intent kind only "
                               "(default: strict prompt-hash matching)")
    p_replay.add_argument("--rounds", type=int, default=None,
                          help="replay only the first N validation rounds, "
                               "then hand off to a live client "
                               "(mid-trace resume)")
    p_replay.set_defaults(func=cmd_trace_replay)

    p_report = trace_sub.add_parser(
        "report", help="summarise a recorded trace")
    p_report.add_argument("trace", help="path to a .trace.jsonl file")
    p_report.set_defaults(func=cmd_trace_report)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
