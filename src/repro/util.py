"""Shared utilities: stable hashing, seeded RNG derivation, text helpers.

Determinism is a core requirement of this reproduction: every stochastic
decision made by the synthetic LLM and the mutation engine must be a pure
function of (global seed, task id, stage, attempt).  Python's builtin
``hash`` is salted per process, so all derived seeds go through SHA-256.
"""

from __future__ import annotations

import hashlib
import random
import re
from typing import Iterable


def stable_hash(*parts: object) -> int:
    """A process-independent 64-bit hash of the given parts."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(*parts: object) -> random.Random:
    """A ``random.Random`` deterministically seeded from the parts."""
    return random.Random(stable_hash(*parts))


_FENCE_RE = re.compile(
    r"```(?P<lang>[A-Za-z0-9_+-]*)[ \t]*\n(?P<body>.*?)```",
    re.DOTALL,
)


def extract_code_blocks(text: str, language: str | None = None) -> list[str]:
    """Extract fenced code blocks from a chat response.

    ``language`` filters on the fence info string (``verilog``, ``python``);
    ``None`` returns every block.  This mirrors how the original pipeline
    parses LLM chat responses.
    """
    blocks = []
    for match in _FENCE_RE.finditer(text):
        lang = match.group("lang").lower()
        if language is None or lang == language.lower():
            blocks.append(match.group("body"))
    return blocks


def extract_first_code_block(text: str, language: str | None = None) -> str:
    """First fenced code block, or the whole text if none is fenced.

    Falling back to the raw text mirrors the leniency real pipelines need
    when a model answers with bare code.
    """
    blocks = extract_code_blocks(text, language)
    if blocks:
        return blocks[0]
    return text


def indent(text: str, prefix: str = "    ") -> str:
    """Indent every non-empty line of ``text`` by ``prefix``."""
    return "\n".join(
        prefix + line if line.strip() else line
        for line in text.splitlines()
    )


def clamp(value: float, lo: float = 0.0, hi: float = 1.0) -> float:
    """Clamp ``value`` into ``[lo, hi]``."""
    return max(lo, min(hi, value))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_ratio(value: float) -> str:
    """Format a ratio in the paper's style, e.g. ``70.13%``."""
    return f"{value * 100:.2f}%"
