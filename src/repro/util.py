"""Shared utilities: stable hashing, seeded RNG derivation, text helpers,
and the thread-safe LRU cache the caching layers are built on.

Determinism is a core requirement of this reproduction: every stochastic
decision made by the synthetic LLM and the mutation engine must be a pure
function of (global seed, task id, stage, attempt).  Python's builtin
``hash`` is salted per process, so all derived seeds go through SHA-256.
"""

from __future__ import annotations

import hashlib
import random
import re
import threading
from collections import OrderedDict
from typing import Callable, Iterable


def stable_hash(*parts: object) -> int:
    """A process-independent 64-bit hash of the given parts."""
    h = hashlib.sha256()
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x1f")
    return int.from_bytes(h.digest()[:8], "big")


def derive_rng(*parts: object) -> random.Random:
    """A ``random.Random`` deterministically seeded from the parts."""
    return random.Random(stable_hash(*parts))


class ExtractionError(ValueError):
    """No usable code block could be recovered from a model reply.

    Raised by :func:`extract_code_block_checked` so pipeline stages can
    route a malformed reply to a retry instead of shipping prose (or an
    empty string) as source code.  ``text`` carries the offending reply
    for diagnostics.
    """

    def __init__(self, message: str, text: str = ""):
        super().__init__(message)
        self.text = text


#: Info-string aliases models actually emit.  Both the requested language
#: and a fence's tag are normalised through this table before comparison.
_LANG_ALIASES = {
    "py": "python",
    "py3": "python",
    "python3": "python",
    "v": "verilog",
    "sv": "verilog",
    "vlog": "verilog",
    "sverilog": "verilog",
    "systemverilog": "verilog",
    "verilog2001": "verilog",
}

_FENCE_OPEN_RE = re.compile(r"^\s*```(?P<info>[^`\n]*)$")
_FENCE_CLOSE_RE = re.compile(r"^\s*```\s*$")
_FENCE_GLUED_CLOSE_RE = re.compile(r"^(?P<rest>[^`]*[^`\s])```\s*$")
# Chatty models open a fence on the same line as their lead-in prose
# ("Here is the fixed module: ```verilog").  Only recognised *outside*
# a block; the info string is one tag-shaped token, so prose that
# merely mentions ``` does not open a phantom block.
_FENCE_PROSE_OPEN_RE = re.compile(
    r"^(?P<pre>[^`]*\S)\s*```(?P<info>[\w.+-]*)\s*$")


def _normalize_lang(tag: str) -> str:
    tag = tag.strip().split()[0].lower() if tag.strip() else ""
    return _LANG_ALIASES.get(tag, tag)


def extract_code_blocks(text: str, language: str | None = None) -> list[str]:
    """Extract fenced code blocks from a chat response.

    ``language`` filters on the fence info string (``verilog``, ``python``);
    ``None`` returns every block.  This mirrors how the original pipeline
    parses LLM chat responses, hardened for the malformed output real
    models produce:

    - an *unclosed* fence yields everything to the end of the reply;
    - a fence "closed" by a second opening fence (```` ```python ````
      twice) ends the first block and starts a new one;
    - a fence opened on the same line as lead-in prose ("Here is the
      code: ```verilog") still opens a block;
    - a closing fence with trailing commentary ("``` Hope this
      helps!") still closes the block (a single tag-shaped token after
      the backticks is a re-opened fence instead);
    - language tags are matched through common aliases (``py``,
      ``python3``, ``sv``, ``systemverilog``, ``vlog``, …),
      case-insensitively.
    """
    want = None if language is None else _normalize_lang(language)
    blocks: list[tuple[str, str]] = []
    body: list[str] | None = None
    lang = ""

    def flush() -> None:
        nonlocal body
        if body is not None:
            blocks.append((lang, "\n".join(body) + "\n" if body else ""))
        body = None

    for line in text.split("\n"):
        if body is None:
            match = _FENCE_OPEN_RE.match(line) or \
                _FENCE_PROSE_OPEN_RE.match(line)
            if match is not None:
                lang = _normalize_lang(match.group("info"))
                body = []
            continue
        if _FENCE_CLOSE_RE.match(line):
            flush()
            continue
        match = _FENCE_OPEN_RE.match(line)
        if match is not None:
            info = match.group("info").strip()
            if len(info.split()) > 1:
                # a closing fence with trailing commentary, not a
                # re-opened fence (language tags are one token)
                flush()
                continue
            flush()  # nested / re-opened fence: split here
            lang = _normalize_lang(info)
            body = []
            continue
        glued = _FENCE_GLUED_CLOSE_RE.match(line)
        if glued is not None:  # code line with the closing fence glued on
            body.append(glued.group("rest"))
            flush()
            continue
        body.append(line)
    if body and body[-1] == "":
        body.pop()  # trailing-newline artifact of splitting at EOF
    flush()  # unclosed fence: keep what was collected

    return [block for block_lang, block in blocks
            if want is None or block_lang == want]


def extract_first_code_block(text: str, language: str | None = None) -> str:
    """First fenced code block, or the whole text if none is fenced.

    Falling back to the raw text mirrors the leniency real pipelines need
    when a model answers with bare code.
    """
    blocks = extract_code_blocks(text, language)
    if blocks:
        return blocks[0]
    return text


def extract_code_block_checked(text: str,
                               language: str | None = None) -> str:
    """Like :func:`extract_first_code_block`, but *checked*.

    Raises :class:`ExtractionError` instead of silently degrading when

    - the reply contains fences but none carries the requested language
      (prose around a block of the wrong kind), or
    - the recovered block (or the bare reply) is blank.

    A fence-free, non-blank reply is still returned whole — bare code is
    legitimate model output; prose-only replies with stray fences are
    not.

    >>> extract_code_block_checked("```python\\nx = 1\\n```", "python")
    'x = 1\\n'
    >>> extract_code_block_checked("Sorry, no code.\\n```\\n```", "python")
    Traceback (most recent call last):
        ...
    repro.util.ExtractionError: no python code block in reply
    """
    blocks = extract_code_blocks(text, language)
    if blocks:
        if not blocks[0].strip():
            raise ExtractionError(
                f"first {language or 'code'} block is empty", text)
        return blocks[0]
    if "```" in text:
        raise ExtractionError(
            f"no {language or 'code'} code block in reply", text)
    if not text.strip():
        raise ExtractionError("reply is empty", text)
    return text


def indent(text: str, prefix: str = "    ") -> str:
    """Indent every non-empty line of ``text`` by ``prefix``."""
    return "\n".join(
        prefix + line if line.strip() else line
        for line in text.splitlines()
    )


def clamp(value: float, lo: float = 0.0, hi: float = 1.0) -> float:
    """Clamp ``value`` into ``[lo, hi]``."""
    return max(lo, min(hi, value))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty iterable."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def format_ratio(value: float) -> str:
    """Format a ratio in the paper's style, e.g. ``70.13%``.

    >>> format_ratio(0.70130)
    '70.13%'
    """
    return f"{value * 100:.2f}%"


class LruCache:
    """A thread-safe LRU mapping with hit/miss telemetry and a
    snapshot-friendly export/import pair.

    :func:`functools.lru_cache` served the caching layers well until the
    warm-start work needed two things it cannot do: *insert* entries
    computed elsewhere (importing a :class:`~repro.core.caches.CacheSnapshot`
    into a fresh worker process) and vary capacity per call site.  This
    class keeps ``lru_cache``'s observable policy — move-to-front on
    hit, evict the least recently used entry on overflow — behind an
    explicit mapping the snapshot machinery can walk.

    ``capacity`` may be an ``int`` or a zero-argument callable returning
    one, so a cache can follow a live configuration knob (the template
    caches read ``SimContext.template_cache_size``).  A capacity change
    only takes effect at the next insertion.

    >>> cache = LruCache(capacity=2)
    >>> cache.get_or_create("a", lambda: 1)
    1
    >>> cache.get_or_create("a", lambda: 99)   # hit: factory not called
    1
    >>> cache.get_or_create("b", lambda: 2)
    2
    >>> cache.get_or_create("c", lambda: 3)    # evicts "a" (LRU)
    3
    >>> sorted(cache.export())
    ['b', 'c']
    >>> cache.stats() == {"hits": 1, "misses": 3, "size": 2}
    True
    """

    def __init__(self, capacity: int | Callable[[], int]):
        self._capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict = OrderedDict()
        self._hits = 0
        self._misses = 0

    def capacity(self) -> int:
        value = self._capacity() if callable(self._capacity) \
            else self._capacity
        return max(1, int(value))

    def get_or_create(self, key, factory: Callable[[], object]):
        """Return the cached value for ``key``, computing it on a miss.

        The factory runs *outside* the lock (factories here parse or
        elaborate — far too slow to serialize); when two threads race on
        the same missing key, the first insertion wins and both callers
        observe that one object, mirroring the identity-stability the
        template tests pin.
        """
        with self._lock:
            value = self._data.get(key)
            if value is not None:
                self._hits += 1
                self._data.move_to_end(key)
                return value
            self._misses += 1
        value = factory()
        return self.insert(key, value)

    def get(self, key, default=None):
        """Return the cached value for ``key`` without computing one.

        Counts as a hit or miss and refreshes recency like
        :meth:`get_or_create`, for layers whose values are produced by
        fallible external calls — the caller probes, performs the call,
        then :meth:`insert`\\ s, so a raised error never caches.
        """
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self._misses += 1
                return default
            self._hits += 1
            self._data.move_to_end(key)
            return value

    def insert(self, key, value):
        """Insert ``value`` unless ``key`` arrived concurrently; returns
        the winning (cached) value."""
        with self._lock:
            existing = self._data.get(key)
            if existing is not None:
                self._data.move_to_end(key)
                return existing
            capacity = self.capacity()
            while len(self._data) >= capacity:
                self._data.popitem(last=False)
            self._data[key] = value
            return value

    def clear(self) -> None:
        """Drop every entry and zero the counters (mirrors
        ``functools.lru_cache.cache_clear``, which the caching layers
        were built on — tests assert post-clear counters start fresh)."""
        with self._lock:
            self._data.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self._hits, "misses": self._misses,
                    "size": len(self._data)}

    def export(self) -> dict:
        """The current entries, least recently used first (insertion
        into a fresh cache in this order reproduces the LRU order)."""
        with self._lock:
            return dict(self._data)

    def import_entries(self, entries: dict) -> int:
        """Insert ``entries`` (skipping keys already present); returns
        the number actually added."""
        added = 0
        for key, value in entries.items():
            if self.insert(key, value) is value:
                added += 1
        return added
