"""Dataset registry: the 156-task benchmark population.

Mirrors the paper's dataset (VerilogEval-Human extended, i.e. 156 HDLBits
problems: 81 combinational + 75 sequential).  Tasks come from the
parameterised families in :mod:`repro.problems.families`.
"""

from __future__ import annotations

from functools import lru_cache

from .families import ALL_FAMILY_MODULES
from .model import CMB, SEQ, TaskSpec

EXPECTED_TOTAL = 156
EXPECTED_CMB = 81
EXPECTED_SEQ = 75


class DatasetError(RuntimeError):
    """Raised when the assembled dataset violates its invariants."""


@lru_cache(maxsize=1)
def load_dataset() -> tuple[TaskSpec, ...]:
    """Build and validate the full task population (cached)."""
    tasks: list[TaskSpec] = []
    for module in ALL_FAMILY_MODULES:
        tasks.extend(module.build())

    ids = [t.task_id for t in tasks]
    duplicates = {i for i in ids if ids.count(i) > 1}
    if duplicates:
        raise DatasetError(f"duplicate task ids: {sorted(duplicates)}")

    n_cmb = sum(1 for t in tasks if t.kind == CMB)
    n_seq = sum(1 for t in tasks if t.kind == SEQ)
    if (len(tasks), n_cmb, n_seq) != (EXPECTED_TOTAL, EXPECTED_CMB,
                                      EXPECTED_SEQ):
        raise DatasetError(
            f"population mismatch: got {len(tasks)} tasks "
            f"({n_cmb} CMB + {n_seq} SEQ), expected {EXPECTED_TOTAL} = "
            f"{EXPECTED_CMB} CMB + {EXPECTED_SEQ} SEQ")

    for task in tasks:
        if not task.variants:
            raise DatasetError(f"task {task.task_id} has no variants")

    # Combinational first, each group sorted by id — a stable, readable
    # order for campaign reports.
    tasks.sort(key=lambda t: (t.kind != CMB, t.task_id))
    return tuple(tasks)


def get_task(task_id: str) -> TaskSpec:
    for task in load_dataset():
        if task.task_id == task_id:
            return task
    raise KeyError(f"unknown task {task_id!r}")


def tasks_of_kind(kind: str) -> tuple[TaskSpec, ...]:
    if kind not in (CMB, SEQ):
        raise ValueError(f"invalid kind {kind!r}")
    return tuple(t for t in load_dataset() if t.kind == kind)


def dataset_slice(n_cmb: int, n_seq: int, stride: int = 1,
                  ) -> tuple[TaskSpec, ...]:
    """A balanced sub-population for scaled-down experiments.

    Takes every ``stride``-th task per kind until the requested counts are
    reached, preserving family diversity.
    """
    cmb = tasks_of_kind(CMB)[::stride][:n_cmb]
    seq = tasks_of_kind(SEQ)[::stride][:n_seq]
    return tuple(cmb) + tuple(seq)
