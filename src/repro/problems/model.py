"""Task model of the benchmark dataset.

The original evaluation uses 156 HDLBits problems (via VerilogEval-Human):
small RTL blocks with a natural-language spec, a golden RTL implementation,
and mutant DUTs.  Offline we rebuild the same population from parameterised
task families.  Each :class:`TaskSpec` carries everything the pipeline and
the synthetic LLM need:

- the natural-language **spec** (sole pipeline input, as in the paper),
- the **golden RTL** (module ``top_module``, as in VerilogEval),
- the **golden checker model** source (a Python ``RefModel`` class),
- a canonical **scenario plan** builder,
- a list of behavioural **variants** — plausible misconceptions expressed
  as parameter perturbations.  Rendering the RTL template and the checker
  template from the *same* perturbed parameters yields a wrong RTL and a
  wrong checker with *identical* wrong behaviour, which is exactly the
  correlated-error mode that limits the paper's validator below 100%.

Checker model convention
------------------------
The rendered checker core defines ``class RefModel`` with:

``__init__(self)``
    construct; initialise state (sequential tasks),
``step(self, inputs: dict) -> dict``
    combinational tasks: pure function of the inputs;
    sequential tasks: advance one clock cycle with the inputs held through
    the cycle (reset is an ordinary input) and return the output values
    sampled just after the rising edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

CMB = "CMB"
SEQ = "SEQ"


@dataclass(frozen=True)
class Port:
    """One port of the design under test."""

    name: str
    direction: str  # "input" | "output"
    width: int = 1
    role: str = "data"  # "clock" | "reset" | "data"

    def __post_init__(self) -> None:
        if self.direction not in ("input", "output"):
            raise ValueError(f"invalid port direction {self.direction!r}")
        if self.role not in ("clock", "reset", "data"):
            raise ValueError(f"invalid port role {self.role!r}")
        if self.width < 1:
            raise ValueError(f"port {self.name!r}: width must be >= 1")

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


@dataclass(frozen=True)
class Scenario:
    """One test scenario: a named sequence of check-points.

    Every vector maps each *driven* port (all inputs except the clock) to an
    integer value.  For sequential tasks one vector is one clock cycle; for
    combinational tasks one vector is one settled input pattern.
    """

    index: int  # 1-based, as printed in the dump lines
    name: str
    description: str
    vectors: tuple[Mapping[str, int], ...]

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError("scenario indexes are 1-based")
        if not self.vectors:
            raise ValueError(f"scenario {self.name!r} has no vectors")


@dataclass(frozen=True)
class Variant:
    """A plausible misconception: the same task with perturbed parameters."""

    vid: str
    description: str
    overrides: Mapping[str, Any]


@dataclass(frozen=True)
class TaskSpec:
    """A fully-specified benchmark task."""

    task_id: str
    family: str
    kind: str  # CMB | SEQ
    title: str
    difficulty: float  # latent hardness in [0, 1]
    ports: tuple[Port, ...]
    params: Mapping[str, Any]
    spec_renderer: Callable[[Mapping[str, Any]], str]
    rtl_renderer: Callable[[Mapping[str, Any]], str]
    model_renderer: Callable[[Mapping[str, Any]], str]
    scenario_builder: Callable[
        [Mapping[str, Any], random.Random], tuple[Scenario, ...]]
    variants: tuple[Variant, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in (CMB, SEQ):
            raise ValueError(f"invalid task kind {self.kind!r}")
        if not 0.0 <= self.difficulty <= 1.0:
            raise ValueError("difficulty must be within [0, 1]")
        names = [p.name for p in self.ports]
        if len(names) != len(set(names)):
            raise ValueError(f"task {self.task_id}: duplicate port names")
        if self.kind == SEQ and self.clock_port is None:
            raise ValueError(f"task {self.task_id}: SEQ task needs a clock")
        if self.kind == CMB and self.clock_port is not None:
            raise ValueError(f"task {self.task_id}: CMB task has a clock")
        if not any(p.direction == "output" for p in self.ports):
            raise ValueError(f"task {self.task_id}: no outputs")

    # ------------------------------------------------------------------
    # Port views
    # ------------------------------------------------------------------
    @property
    def clock_port(self) -> Port | None:
        for port in self.ports:
            if port.role == "clock":
                return port
        return None

    @property
    def reset_port(self) -> Port | None:
        for port in self.ports:
            if port.role == "reset":
                return port
        return None

    @property
    def driven_ports(self) -> tuple[Port, ...]:
        """Inputs the driver assigns per vector (everything but the clock)."""
        return tuple(p for p in self.ports
                     if p.direction == "input" and p.role != "clock")

    @property
    def output_ports(self) -> tuple[Port, ...]:
        return tuple(p for p in self.ports if p.direction == "output")

    def port(self, name: str) -> Port:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"task {self.task_id} has no port {name!r}")

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    @property
    def spec_text(self) -> str:
        return self.spec_renderer(self.params)

    def golden_rtl(self) -> str:
        return self.rtl_renderer(self.params)

    def golden_model_source(self) -> str:
        return self.model_renderer(self.params)

    def variant_params(self, variant: Variant) -> dict[str, Any]:
        merged = dict(self.params)
        merged.update(variant.overrides)
        return merged

    def variant_rtl(self, variant: Variant) -> str:
        return self.rtl_renderer(self.variant_params(variant))

    def variant_model_source(self, variant: Variant) -> str:
        return self.model_renderer(self.variant_params(variant))

    # ------------------------------------------------------------------
    # Scenarios
    # ------------------------------------------------------------------
    def scenarios(self, rng: random.Random) -> tuple[Scenario, ...]:
        """Build a scenario plan; stimulus values may use the RNG."""
        plan = self.scenario_builder(self.params, rng)
        self._check_plan(plan)
        return plan

    def canonical_scenarios(self) -> tuple[Scenario, ...]:
        """The fixed plan used for the golden testbench and dataset checks."""
        return self.scenarios(random.Random(f"golden::{self.task_id}"))

    def _check_plan(self, plan: tuple[Scenario, ...]) -> None:
        if not plan:
            raise ValueError(f"task {self.task_id}: empty scenario plan")
        driven = {p.name for p in self.driven_ports}
        for pos, scenario in enumerate(plan, start=1):
            if scenario.index != pos:
                raise ValueError(
                    f"task {self.task_id}: scenario indexes must be "
                    f"1..N in order (got {scenario.index} at position {pos})")
            for vector in scenario.vectors:
                missing = driven - set(vector)
                extra = set(vector) - driven
                if missing or extra:
                    raise ValueError(
                        f"task {self.task_id}, scenario {scenario.index}: "
                        f"vector keys mismatch (missing={sorted(missing)}, "
                        f"extra={sorted(extra)})")


class CheckerModelError(RuntimeError):
    """Raised when a checker core cannot be loaded or executed."""


def load_ref_model(source: str) -> Any:
    """Compile and instantiate the ``RefModel`` from checker-core source.

    Used by the checker runtime, the baseline generator (to precompute
    expected outputs) and the dataset self-checks.  Raises
    :class:`SyntaxError` for syntactically-broken cores — the caller maps
    this onto the Eval0 criterion — and :class:`CheckerModelError` for
    structurally-broken ones.
    """
    namespace: dict[str, Any] = {}
    code = compile(source, "<checker-core>", "exec")
    exec(code, namespace)  # noqa: S102 - sandboxed, generated by this repo
    ref_model = namespace.get("RefModel")
    if ref_model is None:
        raise CheckerModelError("checker core defines no RefModel class")
    try:
        return ref_model()
    except Exception as exc:  # pragma: no cover - defensive
        raise CheckerModelError(f"RefModel construction failed: {exc}")


def run_model_on_plan(source: str, plan: tuple[Scenario, ...],
                      output_ports: tuple[Port, ...],
                      ) -> dict[int, list[dict[str, int]]]:
    """Run a checker model over a scenario plan.

    Returns ``{scenario index: [outputs per vector]}``.  State carries over
    between scenarios in plan order, exactly as the RTL state does during
    the driver run.
    """
    model = load_ref_model(source)
    results: dict[int, list[dict[str, int]]] = {}
    for scenario in plan:
        rows = []
        for vector in scenario.vectors:
            outputs = model.step(dict(vector))
            rows.append({p.name: int(outputs[p.name]) & p.mask
                         for p in output_ports})
        results[scenario.index] = rows
    return results
