"""Shared builders for task families.

Every family module in this package exposes ``build() -> list[TaskSpec]``.
The helpers here remove the boilerplate: port construction, module-source
assembly, checker-model class assembly, and generic scenario plans.

Template contract
-----------------
Families provide three small renderer callbacks, all parameterised over the
task's ``params`` mapping so that behavioural :class:`Variant` overrides
flow through *both* the RTL and the checker model:

``rtl_body(params) -> str``
    the items inside ``module top_module (...) ... endmodule``;
``model_init(params) -> str``
    the body of ``RefModel.__init__`` (empty string for pure tasks);
``model_step(params) -> str``
    the body of ``RefModel.step(self, inputs)``; must return a dict of
    output-port values.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..model import SEQ, Port, Scenario, TaskSpec, Variant

Params = Mapping[str, Any]


# ----------------------------------------------------------------------
# Ports
# ----------------------------------------------------------------------
def in_port(name: str, width: int = 1, role: str = "data") -> Port:
    return Port(name, "input", width, role)


def out_port(name: str, width: int = 1) -> Port:
    return Port(name, "output", width)


def clock(name: str = "clk") -> Port:
    return Port(name, "input", 1, "clock")


def reset(name: str = "reset") -> Port:
    return Port(name, "input", 1, "reset")


# ----------------------------------------------------------------------
# Verilog source assembly
# ----------------------------------------------------------------------
def _port_decl(port: Port, reg_outputs: frozenset[str]) -> str:
    rng = f" [{port.width - 1}:0]" if port.width > 1 else ""
    if port.direction == "output" and port.name in reg_outputs:
        return f"output reg{rng} {port.name}"
    return f"{port.direction}{rng} {port.name}"


def module_source(ports: Sequence[Port], body: str,
                  reg_outputs: Iterable[str] = (),
                  name: str = "top_module") -> str:
    """Assemble a complete module from the port list and the item body."""
    regs = frozenset(reg_outputs)
    decls = ",\n    ".join(_port_decl(p, regs) for p in ports)
    body = body.strip("\n")
    return f"module {name} (\n    {decls}\n);\n{body}\nendmodule\n"


def vconst(width: int, value: int) -> str:
    """A sized Verilog decimal constant, e.g. ``4'd12``."""
    return f"{width}'d{value & ((1 << width) - 1)}"


# ----------------------------------------------------------------------
# Checker model source assembly
# ----------------------------------------------------------------------
def _indent(text: str, prefix: str) -> str:
    return "\n".join(prefix + line if line.strip() else ""
                     for line in text.strip("\n").splitlines())


def model_class_source(task_id: str, init_body: str, step_body: str) -> str:
    """Assemble the ``RefModel`` checker core from the two bodies."""
    init_body = init_body.strip("\n") or "pass"
    step_body = step_body.strip("\n")
    if not step_body:
        raise ValueError("model step body must not be empty")
    return (
        "class RefModel:\n"
        f'    """Reference model for task {task_id}."""\n'
        "\n"
        "    def __init__(self):\n"
        f"{_indent(init_body, '        ')}\n"
        "\n"
        "    def step(self, inputs):\n"
        f"{_indent(step_body, '        ')}\n"
    )


# ----------------------------------------------------------------------
# Generic scenario plans
# ----------------------------------------------------------------------
def scenario(index: int, name: str, description: str,
             vectors: Sequence[Mapping[str, int]]) -> Scenario:
    return Scenario(index, name, description,
                    tuple(dict(v) for v in vectors))


def random_vector(rng: random.Random, ports: Sequence[Port]) -> dict[str, int]:
    return {p.name: rng.randrange(1 << p.width) for p in ports}


def cmb_scenarios(ports: Sequence[Port], rng: random.Random,
                  n_scenarios: int = 5, vectors_per: int = 4,
                  ) -> tuple[Scenario, ...]:
    """Generic combinational plan: random patterns, plus corner patterns.

    Scenario 1 always exercises the all-zero / all-one corners so constant
    faults are caught even by thin plans.
    """
    plans = []
    corners = [{p.name: 0 for p in ports}, {p.name: p.mask for p in ports}]
    plans.append(scenario(1, "corner_patterns",
                          "All-zero and all-one input corners.", corners))
    for k in range(2, n_scenarios + 1):
        vectors = [random_vector(rng, ports) for _ in range(vectors_per)]
        plans.append(scenario(
            k, f"random_patterns_{k - 1}",
            f"Randomised input patterns, group {k - 1}.", vectors))
    return tuple(plans)


def exhaustive_cmb_scenarios(ports: Sequence[Port], rng: random.Random,
                             group_size: int = 4) -> tuple[Scenario, ...]:
    """Exhaustive plan for small input spaces, chunked into scenarios."""
    names = [p.name for p in ports]
    spaces = [range(1 << p.width) for p in ports]
    vectors = [dict(zip(names, combo)) for combo in product(*spaces)]
    plans = []
    for k, start in enumerate(range(0, len(vectors), group_size), start=1):
        chunk = vectors[start:start + group_size]
        plans.append(scenario(
            k, f"exhaustive_{k}",
            f"Exhaustive input sweep, patterns {start}.."
            f"{start + len(chunk) - 1}.", chunk))
    return tuple(plans)


def seq_scenarios(ports: Sequence[Port], rng: random.Random,
                  reset_name: str | None, n_scenarios: int = 5,
                  cycles_per: int = 6, reset_cycles: int = 2,
                  hold_zero_prob: float = 0.25) -> tuple[Scenario, ...]:
    """Generic sequential plan.

    Every scenario starts with ``reset_cycles`` cycles of asserted reset so
    that state is known, followed by random stimulus cycles.  Ports other
    than the reset get random values; occasionally a port is held at zero
    for a whole scenario to expose enable/hold misconceptions.
    """
    data_ports = [p for p in ports
                  if p.name != reset_name and p.role != "clock"
                  and p.direction == "input"]
    plans = []
    for k in range(1, n_scenarios + 1):
        held = {p.name for p in data_ports
                if p.role == "data" and rng.random() < hold_zero_prob}
        vectors = []
        for cycle in range(cycles_per + reset_cycles):
            vec = {}
            for p in data_ports:
                vec[p.name] = 0 if p.name in held else rng.randrange(
                    1 << p.width)
            if reset_name is not None:
                vec[reset_name] = 1 if cycle < reset_cycles else 0
            vectors.append(vec)
        plans.append(scenario(
            k, f"reset_then_random_{k}",
            "Assert reset, then drive randomised cycles.", vectors))
    return tuple(plans)


def directed_seq_plan(reset_name: str | None, groups: Sequence[
        tuple[str, str, Sequence[Mapping[str, int]]]],
        ) -> tuple[Scenario, ...]:
    """Build a directed sequential plan from (name, description, cycles)."""
    plans = []
    for k, (name, description, cycles) in enumerate(groups, start=1):
        plans.append(scenario(k, name, description, cycles))
    return tuple(plans)


# ----------------------------------------------------------------------
# Task assembly
# ----------------------------------------------------------------------
def build_task(*, task_id: str, family: str, kind: str, title: str,
               difficulty: float, ports: Sequence[Port], params: Params,
               spec_body: Callable[[Params], str],
               rtl_body: Callable[[Params], str],
               model_init: Callable[[Params], str],
               model_step: Callable[[Params], str],
               scenario_builder: Callable[
                   [Params, random.Random], tuple[Scenario, ...]],
               variants: Sequence[Variant],
               reg_outputs: Iterable[str] = ()) -> TaskSpec:
    """Assemble a TaskSpec from family callbacks."""
    ports = tuple(ports)
    regs = tuple(reg_outputs)

    def spec_renderer(p: Params) -> str:
        return _spec_with_interface(title, ports, kind, spec_body(p))

    def rtl_renderer(p: Params) -> str:
        return module_source(ports, rtl_body(p), regs)

    def model_renderer(p: Params) -> str:
        return model_class_source(task_id, model_init(p), model_step(p))

    return TaskSpec(
        task_id=task_id, family=family, kind=kind, title=title,
        difficulty=difficulty, ports=ports, params=dict(params),
        spec_renderer=spec_renderer, rtl_renderer=rtl_renderer,
        model_renderer=model_renderer, scenario_builder=scenario_builder,
        variants=tuple(variants),
    )


def _spec_with_interface(title: str, ports: Sequence[Port], kind: str,
                         body: str) -> str:
    lines = [f"Design an RTL module named top_module: {title}", ""]
    lines.append("Interface:")
    for p in ports:
        width = f"[{p.width - 1}:0] " if p.width > 1 else ""
        role = f" ({p.role})" if p.role != "data" else ""
        lines.append(f"  - {p.direction} {width}{p.name}{role}")
    lines.append("")
    circuit = ("sequential (clocked on the rising edge)"
               if kind == SEQ else "purely combinational")
    lines.append(f"The circuit is {circuit}.")
    lines.append("")
    lines.append(body.strip())
    return "\n".join(lines) + "\n"


def variant(vid: str, description: str, **overrides: Any) -> Variant:
    return Variant(vid, description, overrides)
