"""Decoder tasks: binary-to-one-hot decoders and a seven-segment decoder."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, exhaustive_cmb_scenarios, in_port, out_port,
                    scenario, variant)

FAMILY = "decoder"


def _decoder_task(task_id: str, in_width: int, has_enable: bool,
                  difficulty: float):
    out_width = 1 << in_width
    inputs = [in_port("in_val", in_width)]
    if has_enable:
        inputs.append(in_port("en", 1))
    ports = tuple(inputs + [out_port("out", out_width)])
    mask = (1 << out_width) - 1

    def spec_body(p):
        body = (f"A {in_width}-to-{out_width} one-hot decoder: output bit "
                "out[k] is 1 exactly when in_val equals k.")
        if has_enable:
            body += (" When en is 0 the decoder is disabled and out is "
                     "all zeros.")
        return body

    def rtl_body(p):
        if p["order"] == "msb":
            expr = (f"({out_width}'d{1 << (out_width - 1)} >> in_val)")
        else:
            expr = f"({out_width}'d1 << in_val)"
        if p["invert"]:
            expr = f"~{expr}"
        if has_enable:
            disabled = f"{out_width}'d{p['disabled'] & mask}"
            return f"assign out = en ? {expr} : {disabled};"
        return f"assign out = {expr};"

    def model_step(p):
        shift = (f"(0x{1 << (out_width - 1):X} >> value)"
                 if p["order"] == "msb" else "(1 << value)")
        body = [f"value = inputs['in_val'] & {(1 << in_width) - 1}",
                f"out = {shift} & 0x{mask:X}"]
        if p["invert"]:
            body.append(f"out = (~out) & 0x{mask:X}")
        if has_enable:
            body.append("if not (inputs['en'] & 1):")
            body.append(f"    out = {p['disabled'] & mask}")
        body.append("return {'out': out}")
        return "\n".join(body)

    variants = [
        variant("reversed_order",
                "decodes from the most-significant output bit downwards",
                order="msb"),
        variant("active_low", "produces an active-low (inverted) one-hot",
                invert=True),
    ]
    if has_enable:
        variants.append(variant(
            "disabled_all_ones", "drives all-ones when disabled",
            disabled=mask))
        variants.append(variant(
            "enable_ignored", "ignores the enable input",
            disabled_ignores_enable=True))

    def rtl_body_with_ignore(p):
        if p.get("disabled_ignores_enable"):
            return ("assign out = "
                    f"{'~' if p['invert'] else ''}"
                    f"({out_width}'d"
                    f"{1 << (out_width - 1) if p['order'] == 'msb' else 1}"
                    f" {'>>' if p['order'] == 'msb' else '<<'} in_val);")
        return rtl_body(p)

    def model_step_with_ignore(p):
        if p.get("disabled_ignores_enable"):
            shift = (f"(0x{1 << (out_width - 1):X} >> value)"
                     if p["order"] == "msb" else "(1 << value)")
            body = [f"value = inputs['in_val'] & {(1 << in_width) - 1}",
                    f"out = {shift} & 0x{mask:X}"]
            if p["invert"]:
                body.append(f"out = (~out) & 0x{mask:X}")
            body.append("return {'out': out}")
            return "\n".join(body)
        return model_step(p)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=(f"{in_width}-to-{out_width} decoder"
               + (" with enable" if has_enable else "")),
        difficulty=difficulty, ports=ports,
        params={"order": "lsb", "invert": False, "disabled": 0,
                "disabled_ignores_enable": False},
        spec_body=spec_body, rtl_body=rtl_body_with_ignore,
        model_init=lambda p: "", model_step=model_step_with_ignore,
        scenario_builder=lambda p, rng: exhaustive_cmb_scenarios(
            ports[:-1], rng, group_size=2 if has_enable else 1),
        variants=variants,
    )


# Standard common-cathode patterns, segments gfedcba, active high.
_SEG_TABLE = (0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07, 0x7F, 0x6F)


def _seven_seg_task():
    task_id = "cmb_seven_seg"
    ports = (in_port("bcd", 4), out_port("seg", 7))

    def spec_body(p):
        return ("A BCD to seven-segment decoder with active-high segment "
                "outputs seg[6:0] = {g, f, e, d, c, b, a}. Digits 0-9 "
                "produce the standard patterns; inputs 10-15 blank the "
                "display (seg = 0).")

    def rtl_body(p):
        table = p["table"]
        lines = ["always @(*) begin", "    case (bcd)"]
        for digit, pattern in enumerate(table):
            value = (~pattern & 0x7F) if p["invert"] else pattern
            lines.append(f"        4'd{digit}: seg = 7'd{value};")
        blank = (~p["blank"] & 0x7F) if p["invert"] else p["blank"]
        lines.append(f"        default: seg = 7'd{blank & 0x7F};")
        lines.extend(["    endcase", "end"])
        return "\n".join(lines)

    def model_step(p):
        values = [((~v & 0x7F) if p["invert"] else v) for v in p["table"]]
        blank = (~p["blank"] & 0x7F) if p["invert"] else (p["blank"] & 0x7F)
        return (
            f"table = {tuple(values)}\n"
            "bcd = inputs['bcd'] & 0xF\n"
            "if bcd < 10:\n"
            f"    return {{'seg': table[bcd]}}\n"
            f"return {{'seg': {blank}}}"
        )

    def scenarios(p, rng):
        plans = []
        digits = list(range(10))
        for k, chunk_start in enumerate(range(0, 10, 4), start=1):
            chunk = digits[chunk_start:chunk_start + 4]
            plans.append(scenario(
                k, f"digits_{chunk[0]}_{chunk[-1]}",
                f"Drive BCD digits {chunk[0]}..{chunk[-1]}.",
                [{"bcd": d} for d in chunk]))
        plans.append(scenario(
            len(plans) + 1, "out_of_range",
            "Drive the non-decimal codes 10..15.",
            [{"bcd": d} for d in range(10, 16)]))
        return tuple(plans)

    broken9 = _SEG_TABLE[:9] + (0x67,)   # 9 without the bottom segment
    broken6 = _SEG_TABLE[:6] + (0x7C,) + _SEG_TABLE[7:]  # 6 missing top bar
    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="BCD to seven-segment decoder", difficulty=0.38, ports=ports,
        params={"table": _SEG_TABLE, "blank": 0, "invert": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("active_low", "segment outputs inverted", invert=True),
            variant("nine_wrong", "digit 9 rendered without bottom segment",
                    table=broken9),
            variant("six_wrong", "digit 6 rendered without the top bar",
                    table=broken6),
            variant("blank_all_on", "codes 10-15 light every segment",
                    blank=0x7F),
        ],
        reg_outputs=["seg"],
    )


def build():
    return [
        _decoder_task("cmb_dec2to4", 2, False, 0.10),
        _decoder_task("cmb_dec2to4_en", 2, True, 0.15),
        _decoder_task("cmb_dec3to8", 3, False, 0.13),
        _decoder_task("cmb_dec3to8_en", 3, True, 0.20),
        _seven_seg_task(),
    ]
