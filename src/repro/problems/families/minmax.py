"""Minimum / maximum selection tasks."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, in_port, out_port, scenario, variant)

FAMILY = "minmax"


def _minmax2_task(task_id: str, width: int, want_max: bool,
                  difficulty: float):
    ports = (in_port("a", width), in_port("b", width),
             out_port("out", width))
    mask = (1 << width) - 1

    def spec_body(p):
        kind = "larger" if want_max else "smaller"
        return (f"out is the {kind} of the two unsigned {width}-bit "
                "inputs (either one when they are equal).")

    def rtl_body(p):
        cmp_op = ">" if p["pick_max"] else "<"
        first, second = ("a", "b") if not p["swap_result"] else ("b", "a")
        expr = f"(a {cmp_op} b) ? {first} : {second}"
        if p["drop_msb"]:
            return f"assign out = ({expr}) & {width}'d{mask >> 1};"
        return f"assign out = {expr};"

    def model_step(p):
        cmp_op = ">" if p["pick_max"] else "<"
        first, second = ("a", "b") if not p["swap_result"] else ("b", "a")
        out_mask = (mask >> 1) if p["drop_msb"] else mask
        return (
            f"a = inputs['a'] & 0x{mask:X}\n"
            f"b = inputs['b'] & 0x{mask:X}\n"
            f"out = {first} if a {cmp_op} b else {second}\n"
            f"return {{'out': out & 0x{out_mask:X}}}"
        )

    def scenarios(p, rng):
        ordered = [{"a": rng.randrange(1 << width),
                    "b": rng.randrange(1 << width)} for _ in range(4)]
        equal = [{"a": v, "b": v} for v in (0, mask, rng.randrange(mask))]
        msb = [{"a": mask, "b": 1}, {"a": 1, "b": mask},
               {"a": mask, "b": mask - 1}]
        return (
            scenario(1, "random_pairs", "Randomised operand pairs.",
                     ordered),
            scenario(2, "equal_operands", "Equal operands.", equal),
            scenario(3, "msb_heavy", "Operands with the MSB set.", msb),
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit unsigned {'maximum' if want_max else 'minimum'}",
        difficulty=difficulty, ports=ports,
        params={"pick_max": want_max, "swap_result": False,
                "drop_msb": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("opposite", "selects the opposite extreme",
                    pick_max=not want_max),
            variant("result_swapped",
                    "comparison correct but arms swapped",
                    swap_result=True),
            variant("msb_dropped", "drops the most-significant output bit",
                    drop_msb=True),
        ],
    )


def _max4_task():
    task_id = "cmb_max4x4"
    width = 4
    ports = (in_port("a", width), in_port("b", width), in_port("c", width),
             in_port("d", width), out_port("out", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return "out is the largest of the four unsigned 4-bit inputs."

    def rtl_body(p):
        stage1 = "(a > b) ? a : b"
        stage2 = "(c > d) ? c : d"
        if p["ignore_d"]:
            stage2 = "c"
        if p["pick_min"]:
            stage1 = stage1.replace(">", "<")
            stage2 = stage2.replace(">", "<") if ">" in stage2 else stage2
            return (f"wire [3:0] lo01 = {stage1};\n"
                    f"wire [3:0] lo23 = {stage2};\n"
                    "assign out = (lo01 < lo23) ? lo01 : lo23;")
        return (f"wire [3:0] hi01 = {stage1};\n"
                f"wire [3:0] hi23 = {stage2};\n"
                "assign out = (hi01 > hi23) ? hi01 : hi23;")

    def model_step(p):
        fn = "min" if p["pick_min"] else "max"
        operands = "a, b, c" if p["ignore_d"] else "a, b, c, d"
        return (
            f"a = inputs['a'] & 0x{mask:X}\n"
            f"b = inputs['b'] & 0x{mask:X}\n"
            f"c = inputs['c'] & 0x{mask:X}\n"
            f"d = inputs['d'] & 0x{mask:X}\n"
            f"return {{'out': {fn}({operands})}}"
        )

    def scenarios(p, rng):
        plans = []
        for k, winner in enumerate("abcd", start=1):
            vectors = []
            for _ in range(3):
                vec = {name: rng.randrange(8) for name in "abcd"}
                vec[winner] = 8 + rng.randrange(8)
                vectors.append(vec)
            plans.append(scenario(
                k, f"largest_is_{winner}",
                f"Input {winner} holds the largest value.", vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="maximum of four 4-bit values", difficulty=0.28,
        ports=ports, params={"pick_min": False, "ignore_d": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("minimum_instead", "computes the minimum",
                    pick_min=True),
            variant("ignores_d", "ignores the fourth input", ignore_d=True),
        ],
    )


def build():
    return [
        _minmax2_task("cmb_max2x8", 8, True, 0.14),
        _minmax2_task("cmb_min2x8", 8, False, 0.14),
        _max4_task(),
    ]
