"""Small combinational ALU tasks."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, in_port, out_port, scenario, variant)

FAMILY = "alu"

# op name -> (verilog expression, python expression over a, b, mask)
_OP_EXPRS = {
    "add": ("a + b", "(a + b) & mask"),
    "sub": ("a - b", "(a - b) & mask"),
    "and": ("a & b", "a & b"),
    "or": ("a | b", "a | b"),
    "xor": ("a ^ b", "a ^ b"),
    "xnor": ("~(a ^ b)", "(~(a ^ b)) & mask"),
    "shl1": ("a << 1", "(a << 1) & mask"),
    "shr1": ("a >> 1", "a >> 1"),
    "pass_b": ("b", "b"),
    "pass_a": ("a", "a"),
}


def _alu_task(task_id: str, width: int, op_list: tuple[str, ...],
              difficulty: float, variant_specs):
    sel_width = max(1, (len(op_list) - 1).bit_length())
    ports = (in_port("a", width), in_port("b", width),
             in_port("op", sel_width),
             out_port("result", width), out_port("zero", 1))
    mask = (1 << width) - 1

    def spec_body(p):
        rows = "; ".join(f"op={k}: {name}"
                         for k, name in enumerate(p["ops"]))
        return (f"A {width}-bit ALU. result is selected by op ({rows}; "
                "higher op values repeat op=0). zero is 1 when result is "
                "all zeros.")

    def rtl_body(p):
        lines = ["always @(*) begin", "    case (op)"]
        for k, op_name in enumerate(p["ops"]):
            lines.append(f"        {sel_width}'d{k}: result = "
                         f"{_OP_EXPRS[op_name][0]};")
        lines.append("        default: result = "
                     f"{_OP_EXPRS[p['ops'][0]][0]};")
        lines.extend(["    endcase", "end"])
        zero = ("result != {width}'d0".format(width=width)
                if p["zero_inverted"] else
                "result == {width}'d0".format(width=width))
        lines.append(f"assign zero = {zero};")
        return "\n".join(lines)

    def model_step(p):
        lines = [f"mask = 0x{mask:X}",
                 "a = inputs['a'] & mask",
                 "b = inputs['b'] & mask",
                 f"op = inputs['op'] & {(1 << sel_width) - 1}"]
        for k, op_name in enumerate(p["ops"]):
            kw = "if" if k == 0 else "elif"
            lines.append(f"{kw} op == {k}:")
            lines.append(f"    result = {_OP_EXPRS[op_name][1]}")
        lines.append("else:")
        lines.append(f"    result = {_OP_EXPRS[p['ops'][0]][1]}")
        compare = "!=" if p["zero_inverted"] else "=="
        lines.append(f"return {{'result': result & mask, "
                     f"'zero': 1 if (result & mask) {compare} 0 else 0}}")
        return "\n".join(lines)

    def scenarios(p, rng):
        plans = []
        for k in range(len(op_list)):
            vectors = [{"a": rng.randrange(1 << width),
                        "b": rng.randrange(1 << width), "op": k}
                       for _ in range(3)]
            vectors.append({"a": 0, "b": 0, "op": k})  # exercise zero flag
            plans.append(scenario(
                k + 1, f"op_{op_list[k]}",
                f"Exercise the {op_list[k]} operation.", vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit {len(op_list)}-operation ALU",
        difficulty=difficulty, ports=ports,
        params={"ops": op_list, "zero_inverted": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios, variants=variant_specs,
        reg_outputs=["result"],
    )


def build():
    ops4 = ("add", "sub", "and", "or")
    ops8 = ("add", "sub", "and", "or", "xor", "shl1", "shr1", "pass_b")
    return [
        _alu_task(
            "cmb_alu4", 4, ops4, 0.30,
            [
                variant("and_or_swapped", "AND and OR operations swapped",
                        ops=("add", "sub", "or", "and")),
                variant("sub_is_add", "subtract computes addition",
                        ops=("add", "add", "and", "or")),
                variant("zero_inverted", "zero flag polarity inverted",
                        zero_inverted=True),
            ]),
        _alu_task(
            "cmb_alu8", 8, ops8, 0.42,
            [
                variant("shift_swapped", "shift directions swapped",
                        ops=("add", "sub", "and", "or", "xor", "shr1",
                             "shl1", "pass_b")),
                variant("xor_is_xnor", "XOR computes XNOR",
                        ops=("add", "sub", "and", "or", "xnor", "shl1",
                             "shr1", "pass_b")),
                variant("pass_wrong_operand", "pass-through passes a",
                        ops=("add", "sub", "and", "or", "xor", "shl1",
                             "shr1", "pass_a")),
            ]),
    ]
