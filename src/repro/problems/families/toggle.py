"""Toggle flip-flop and clock-divider tasks."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "toggle"


def _tff_task(task_id: str, gated: bool, difficulty: float):
    inputs = [clock(), reset()]
    if gated:
        inputs.append(in_port("t", 1))
    ports = tuple(inputs + [out_port("q", 1)])

    def spec_body(p):
        if gated:
            return ("A T flip-flop: q toggles at the rising edge when t "
                    "is 1 and holds when t is 0; synchronous reset clears "
                    "q.")
        return ("q toggles at every rising clock edge; synchronous reset "
                "clears q (a divide-by-two).")

    def rtl_body(p):
        if gated and not p["always_toggles"]:
            t_expr = "!t" if p["t_inverted"] else "t"
            body = f"if ({t_expr}) q <= ~q;"
        else:
            body = "q <= ~q;"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= 1'b{p['reset_val']};\n"
                f"    else {body}\n"
                "end")

    def model_step(p):
        if gated and not p["always_toggles"]:
            cond = ("not (inputs['t'] & 1)" if p["t_inverted"]
                    else "inputs['t'] & 1")
            move = f"if {cond}:\n        self.q ^= 1"
        else:
            move = "self.q ^= 1"
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.q = {p['reset_val']}\n"
            "else:\n"
            f"    {move}\n"
            "return {'q': self.q}"
        )

    variants = [variant("reset_to_one", "reset sets q to 1", reset_val=1)]
    if gated:
        variants.append(variant("toggle_ungated", "toggles every cycle",
                                always_toggles=True))
        variants.append(variant("t_inverted", "t input sense inverted",
                                t_inverted=True))

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="T flip-flop" if gated else "divide-by-two toggler",
        difficulty=difficulty, ports=ports,
        params={"reset_val": 0, "always_toggles": False,
                "t_inverted": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=7),
        variants=variants,
        reg_outputs=["q"],
    )


def _divider_task(task_id: str, divide_log2: int, difficulty: float):
    ports = (clock(), reset(), out_port("tick", 1))
    width = divide_log2
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A divide-by-{1 << divide_log2} pulse generator: an "
                f"internal {width}-bit counter advances each rising edge "
                "and tick is 1 exactly in the cycles where the counter "
                "has wrapped to 0 (tick is 0 in the reset cycle itself).")

    def rtl_body(p):
        bit = p["tap_bit"]
        if p["mode"] == "msb":
            return (f"reg [{width - 1}:0] count;\n"
                    "always @(posedge clk) begin\n"
                    f"    if (reset) count <= {width}'d0;\n"
                    f"    else count <= count + {width}'d1;\n"
                    "end\n"
                    "always @(*) begin\n"
                    f"    tick = count[{bit}];\n"
                    "end")
        return (
            f"reg [{width - 1}:0] count;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            f"        count <= {width}'d0;\n"
            "        tick <= 1'b0;\n"
            "    end else begin\n"
            f"        count <= count + {width}'d1;\n"
            f"        tick <= (count == {width}'d{mask});\n"
            "    end\n"
            "end")

    def model_step(p):
        if p["mode"] == "msb":
            return (
                "if inputs['reset'] & 1:\n"
                "    self.count = 0\n"
                "else:\n"
                f"    self.count = (self.count + 1) & 0x{mask:X}\n"
                f"return {{'tick': (self.count >> {p['tap_bit']}) & 1}}"
            )
        return (
            "if inputs['reset'] & 1:\n"
            "    self.count = 0\n"
            "    self.tick = 0\n"
            "else:\n"
            f"    self.tick = 1 if self.count == 0x{mask:X} else 0\n"
            f"    self.count = (self.count + 1) & 0x{mask:X}\n"
            "return {'tick': self.tick}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"divide-by-{1 << divide_log2} tick generator",
        difficulty=difficulty, ports=ports,
        params={"mode": "pulse", "tap_bit": width - 1},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: ("self.count = 0"
                              if p["mode"] == "msb"
                              else "self.count = 0\nself.tick = 0"),
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4,
            cycles_per=(2 << divide_log2) + 3),
        variants=[
            variant("square_wave",
                    "outputs the counter MSB (a square wave) instead of "
                    "a one-cycle pulse", mode="msb"),
        ],
        reg_outputs=["tick"],
    )


def build():
    return [
        _tff_task("seq_div2", False, 0.15),
        _tff_task("seq_tff", True, 0.22),
        _divider_task("seq_div8_tick", 3, 0.45),
        _divider_task("seq_div4_tick", 2, 0.40),
        _divider_task("seq_div16_tick", 4, 0.48),
    ]
