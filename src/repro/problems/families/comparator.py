"""Comparator tasks (equality, three-way compare, absolute difference)."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, in_port, out_port, scenario, variant)

FAMILY = "comparator"


def _pair_scenarios(width: int):
    """Scenario plan shared by the comparator tasks: equal pairs, ordered
    pairs both ways, then random pairs."""

    def scenarios(p, rng):
        mask = (1 << width) - 1
        equal = [{"a": v, "b": v}
                 for v in (0, mask, rng.randrange(1 << width))]
        less = []
        greater = []
        for _ in range(4):
            x = rng.randrange(1 << width)
            y = rng.randrange(1 << width)
            lo, hi = min(x, y), max(x, y)
            if lo == hi:
                hi = (hi + 1) & mask
                lo, hi = min(lo, hi), max(lo, hi)
            less.append({"a": lo, "b": hi})
            greater.append({"a": hi, "b": lo})
        rand = [{"a": rng.randrange(1 << width),
                 "b": rng.randrange(1 << width)} for _ in range(4)]
        return (
            scenario(1, "equal_operands", "Pairs with a equal to b.", equal),
            scenario(2, "a_less_than_b", "Pairs with a strictly below b.",
                     less),
            scenario(3, "a_greater_than_b",
                     "Pairs with a strictly above b.", greater),
            scenario(4, "random_pairs", "Randomised operand pairs.", rand),
        )

    return scenarios


_EQ_MODES = {
    "eq": ("a == b", "1 if a == b else 0"),
    "neq": ("a != b", "1 if a != b else 0"),
    "eq_one": ("a == b + 1'b1", "1 if a == ((b + 1) & mask) else 0"),
}


def _equality_task(task_id: str, width: int, difficulty: float):
    ports = (in_port("a", width), in_port("b", width), out_port("eq", 1))
    mask = (1 << width) - 1

    def spec_body(p):
        return f"eq is 1 exactly when the two {width}-bit inputs are equal."

    def rtl_body(p):
        return f"assign eq = {_EQ_MODES[p['mode']][0]};"

    def model_step(p):
        return (
            f"mask = 0x{mask:X}\n"
            "a = inputs['a'] & mask\n"
            "b = inputs['b'] & mask\n"
            f"return {{'eq': {_EQ_MODES[p['mode']][1]}}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit equality comparator", difficulty=difficulty,
        ports=ports, params={"mode": "eq"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=_pair_scenarios(width),
        variants=[
            variant("inverted", "reports inequality instead", mode="neq"),
            variant("off_by_one", "compares a against b + 1", mode="eq_one"),
        ],
    )


def _threeway_task(task_id: str, width: int, difficulty: float):
    ports = (in_port("a", width), in_port("b", width),
             out_port("lt", 1), out_port("eq", 1), out_port("gt", 1))
    mask = (1 << width) - 1

    def spec_body(p):
        return ("A three-way unsigned comparator: lt = (a < b), "
                "eq = (a == b), gt = (a > b); exactly one output is high.")

    def rtl_body(p):
        lt_expr, gt_expr = "a < b", "a > b"
        if p["swapped"]:
            lt_expr, gt_expr = gt_expr, lt_expr
        if p["lax"]:
            lt_expr = lt_expr.replace("<", "<=").replace(">", ">=")
        return (f"assign lt = {lt_expr};\n"
                "assign eq = a == b;\n"
                f"assign gt = {gt_expr};")

    def model_step(p):
        lt_expr, gt_expr = "a < b", "a > b"
        if p["swapped"]:
            lt_expr, gt_expr = gt_expr, lt_expr
        if p["lax"]:
            lt_expr = lt_expr.replace("<", "<=").replace(">", ">=")
        return (
            f"a = inputs['a'] & 0x{mask:X}\n"
            f"b = inputs['b'] & 0x{mask:X}\n"
            f"return {{'lt': 1 if {lt_expr} else 0,\n"
            "        'eq': 1 if a == b else 0,\n"
            f"        'gt': 1 if {gt_expr} else 0}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit three-way comparator", difficulty=difficulty,
        ports=ports, params={"swapped": False, "lax": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=_pair_scenarios(width),
        variants=[
            variant("lt_gt_swapped", "lt and gt outputs swapped",
                    swapped=True),
            variant("non_strict", "lt uses <= so equality asserts lt too",
                    lax=True),
        ],
    )


def _ge_task(task_id: str, width: int, difficulty: float):
    ports = (in_port("a", width), in_port("b", width), out_port("ge", 1))
    mask = (1 << width) - 1
    modes = {"ge": ("a >= b", "a >= b"), "gt": ("a > b", "a > b"),
             "le": ("a <= b", "a <= b")}

    def spec_body(p):
        return "ge is 1 when unsigned a is greater than or equal to b."

    def rtl_body(p):
        return f"assign ge = {modes[p['mode']][0]};"

    def model_step(p):
        return (
            f"a = inputs['a'] & 0x{mask:X}\n"
            f"b = inputs['b'] & 0x{mask:X}\n"
            f"return {{'ge': 1 if {modes[p['mode']][1]} else 0}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit greater-or-equal comparator",
        difficulty=difficulty, ports=ports, params={"mode": "ge"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=_pair_scenarios(width),
        variants=[
            variant("strict", "uses strict greater-than", mode="gt"),
            variant("reversed", "compares the wrong way around", mode="le"),
        ],
    )


def _absdiff_task(task_id: str, width: int, difficulty: float):
    ports = (in_port("a", width), in_port("b", width),
             out_port("diff", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return ("diff is the absolute difference |a - b| of the two "
                f"unsigned {width}-bit inputs.")

    def rtl_body(p):
        if p["mode"] == "wrap":
            return "assign diff = a - b;"
        if p["mode"] == "reversed":
            return "assign diff = (a > b) ? (b - a) : (a - b);"
        return "assign diff = (a > b) ? (a - b) : (b - a);"

    def model_step(p):
        if p["mode"] == "wrap":
            body = "result = (a - b) & mask"
        elif p["mode"] == "reversed":
            body = "result = ((b - a) if a > b else (a - b)) & mask"
        else:
            body = "result = (a - b) if a > b else (b - a)"
        return (
            f"mask = 0x{mask:X}\n"
            "a = inputs['a'] & mask\n"
            "b = inputs['b'] & mask\n"
            f"{body}\n"
            "return {'diff': result & mask}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit absolute difference", difficulty=difficulty,
        ports=ports, params={"mode": "abs"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=_pair_scenarios(width),
        variants=[
            variant("wrapping", "computes a - b without the magnitude test",
                    mode="wrap"),
            variant("reversed_branches",
                    "subtracts the wrong way in each branch",
                    mode="reversed"),
        ],
    )


def build():
    return [
        _equality_task("cmb_eq4", 4, 0.08),
        _threeway_task("cmb_cmp4_3way", 4, 0.18),
        _ge_task("cmb_cmp8_ge", 8, 0.12),
        _absdiff_task("cmb_absdiff8", 8, 0.28),
    ]
