"""Timer tasks: loadable countdown, periodic pulse, watchdog."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset, scenario,
                    seq_scenarios, variant)

FAMILY = "timer"


def _countdown_task():
    task_id = "seq_countdown8"
    ports = (clock(), reset(), in_port("load", 1), in_port("d", 8),
             out_port("q", 8), out_port("done", 1))

    def spec_body(p):
        return ("A loadable countdown timer: load takes d; otherwise q "
                "decrements and holds at zero. done is 1 while q is zero. "
                "Synchronous reset clears q.")

    def rtl_body(p):
        floor = p["done_at"]
        if p["wraps"]:
            dec = "q <= q - 8'd1;"
        else:
            dec = "q <= (q == 8'd0) ? 8'd0 : q - 8'd1;"
        return (
            "always @(posedge clk) begin\n"
            "    if (reset) q <= 8'd0;\n"
            "    else if (load) q <= d;\n"
            f"    else {dec}\n"
            "end\n"
            f"assign done = (q == 8'd{floor});")

    def model_step(p):
        if p["wraps"]:
            dec = "self.q = (self.q - 1) & 0xFF"
        else:
            dec = "self.q = 0 if self.q == 0 else self.q - 1"
        return (
            "if inputs['reset'] & 1:\n"
            "    self.q = 0\n"
            "elif inputs['load'] & 1:\n"
            "    self.q = inputs['d'] & 0xFF\n"
            "else:\n"
            f"    {dec}\n"
            f"return {{'q': self.q, "
            f"'done': 1 if self.q == {p['done_at']} else 0}}"
        )

    def scenarios(p, rng):
        plans = []
        for k in range(1, 6):
            value = rng.randrange(2, 9)
            vectors = [{"reset": 1, "load": 0, "d": 0},
                       {"reset": 0, "load": 1, "d": value}]
            for _ in range(value + 3):
                vectors.append({"reset": 0, "load": 0,
                                "d": rng.randrange(256)})
            plans.append(scenario(
                k, f"load_{value}_and_run",
                f"Load {value} and count down past zero.", vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="loadable countdown timer", difficulty=0.42, ports=ports,
        params={"wraps": False, "done_at": 0},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("wraps_below_zero", "keeps decrementing past zero",
                    wraps=True),
            variant("done_at_one", "done asserts at one", done_at=1),
        ],
        reg_outputs=["q"],
    )


def _pulse_task(task_id: str, period: int, difficulty: float):
    width = max(1, (period - 1).bit_length())
    ports = (clock(), reset(), out_port("pulse", 1))
    mask = (1 << width) - 1

    def spec_body(p):
        return ("A periodic pulse generator: pulse is 1 for exactly one "
                f"cycle out of every {p['period']}, first asserting "
                f"{p['period']} cycles after reset deasserts.")

    def rtl_body(p):
        top = (p["period"] - 1) & mask
        when = p["fire_at"] & mask
        return (
            f"reg [{width - 1}:0] count;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            f"        count <= {width}'d0;\n"
            "        pulse <= 1'b0;\n"
            "    end else begin\n"
            f"        if (count == {width}'d{top}) count <= {width}'d0;\n"
            f"        else count <= count + {width}'d1;\n"
            f"        pulse <= (count == {width}'d{when});\n"
            "    end\n"
            "end")

    def model_step(p):
        top = (p["period"] - 1) & mask
        when = p["fire_at"] & mask
        return (
            "if inputs['reset'] & 1:\n"
            "    self.count = 0\n"
            "    self.pulse = 0\n"
            "else:\n"
            f"    self.pulse = 1 if self.count == {when} else 0\n"
            f"    self.count = 0 if self.count == {top} "
            "else self.count + 1\n"
            "return {'pulse': self.pulse}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"one-in-{period} pulse generator", difficulty=difficulty,
        ports=ports, params={"period": period, "fire_at": period - 1},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.count = 0\nself.pulse = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4,
            cycles_per=3 * period + 2),
        variants=[
            variant("fires_at_zero", "pulses one cycle too early",
                    fire_at=0),
            variant("period_off_by_one",
                    f"repeats every {period + 1} cycles",
                    period=period + 1,
                    fire_at=period),
        ],
        reg_outputs=["pulse"],
    )


def _watchdog_task():
    task_id = "seq_watchdog"
    limit = 5
    ports = (clock(), reset(), in_port("kick", 1), out_port("alarm", 1))

    def spec_body(p):
        return ("A watchdog: an internal counter increments each cycle "
                "and is cleared by kick. alarm asserts once the counter "
                f"reaches {p['limit']} and stays high until a kick (or "
                "reset) clears it.")

    def rtl_body(p):
        kick_cond = ("kick" if not p["kick_ignored_in_alarm"]
                     else "kick && !alarm")
        return (
            "reg [2:0] count;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            "        count <= 3'd0;\n"
            "        alarm <= 1'b0;\n"
            "    end else if (" + kick_cond + ") begin\n"
            "        count <= 3'd0;\n"
            "        alarm <= 1'b0;\n"
            "    end else begin\n"
            f"        if (count >= 3'd{p['limit'] - 1}) alarm <= 1'b1;\n"
            "        else count <= count + 3'd1;\n"
            "    end\n"
            "end")

    def model_step(p):
        kick_cond = ("kick" if not p["kick_ignored_in_alarm"]
                     else "kick and not self.alarm")
        return (
            "kick = inputs['kick'] & 1\n"
            "if inputs['reset'] & 1:\n"
            "    self.count = 0\n"
            "    self.alarm = 0\n"
            f"elif {kick_cond}:\n"
            "    self.count = 0\n"
            "    self.alarm = 0\n"
            "else:\n"
            f"    if self.count >= {p['limit'] - 1}:\n"
            "        self.alarm = 1\n"
            "    else:\n"
            "        self.count = self.count + 1\n"
            "return {'alarm': self.alarm}"
        )

    def scenarios(p, rng):
        base = seq_scenarios(ports, rng, reset_name="reset",
                             n_scenarios=4, cycles_per=2 * limit + 4,
                             hold_zero_prob=0.5)
        # Directed: starve until the alarm fires, then kick it clear.
        vectors = [{"reset": 1, "kick": 0}, {"reset": 1, "kick": 0}]
        vectors += [{"reset": 0, "kick": 0} for _ in range(limit + 2)]
        vectors += [{"reset": 0, "kick": 1}]
        vectors += [{"reset": 0, "kick": 0} for _ in range(3)]
        plans = list(base)
        plans.append(scenario(len(base) + 1, "alarm_then_kick",
                              "Let the alarm fire, then kick.", vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="watchdog alarm", difficulty=0.55, ports=ports,
        params={"limit": limit, "kick_ignored_in_alarm": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.count = 0\nself.alarm = 0",
        model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("alarm_one_early", "alarm asserts one cycle early",
                    limit=limit - 1),
            variant("kick_cannot_clear_alarm",
                    "kick is ignored once the alarm fired",
                    kick_ignored_in_alarm=True),
        ],
        reg_outputs=["alarm"],
    )


def build():
    return [
        _countdown_task(),
        _pulse_task("seq_pulse5", 5, 0.45),
        _pulse_task("seq_pulse7", 7, 0.47),
        _watchdog_task(),
    ]
