"""Combinational gate tasks (2-input gates, vector gates, reductions)."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, cmb_scenarios, exhaustive_cmb_scenarios,
                    in_port, out_port, variant)

FAMILY = "gates"

# op -> (verilog expression, python expression) over identifiers a and b.
_OPS2 = {
    "and": ("a & b", "a & b"),
    "or": ("a | b", "a | b"),
    "xor": ("a ^ b", "a ^ b"),
    "nand": ("~(a & b)", "~(a & b)"),
    "nor": ("~(a | b)", "~(a | b)"),
    "xnor": ("~(a ^ b)", "~(a ^ b)"),
}

# reduction op -> (verilog expression over in, python truth expression)
_RED_OPS = {
    "or": ("|in_bus", "1 if value else 0"),
    "nor": ("~(|in_bus)", "0 if value else 1"),
    "and": ("&in_bus", "1 if value == mask else 0"),
    "nand": ("~(&in_bus)", "0 if value == mask else 1"),
}


def _gate2_task(task_id: str, title: str, op: str, width: int,
                difficulty: float, other_ops: tuple[str, str]):
    ports = (in_port("a", width), in_port("b", width), out_port("out", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"Compute out = {p['op'].upper()}(a, b), the bitwise "
                f"{p['op']} of the two {width}-bit inputs.")

    def rtl_body(p):
        return f"assign out = {_OPS2[p['op']][0]};"

    def model_step(p):
        return (
            f"a = inputs['a'] & 0x{mask:X}\n"
            f"b = inputs['b'] & 0x{mask:X}\n"
            f"return {{'out': ({_OPS2[p['op']][1]}) & 0x{mask:X}}}"
        )

    def scenarios(p, rng):
        if width == 1:
            return exhaustive_cmb_scenarios(ports[:2], rng, group_size=2)
        return cmb_scenarios(ports[:2], rng, n_scenarios=4, vectors_per=4)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB, title=title,
        difficulty=difficulty, ports=ports, params={"op": op},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant(f"op_{other_ops[0]}",
                    f"implements {other_ops[0]} instead of {op}",
                    op=other_ops[0]),
            variant(f"op_{other_ops[1]}",
                    f"implements {other_ops[1]} instead of {op}",
                    op=other_ops[1]),
            variant("op_inverted", f"inverts the {op} result",
                    op={"and": "nand", "or": "nor", "xor": "xnor",
                        "nand": "and", "nor": "or", "xnor": "xor"}[op]),
        ],
    )


def _reduction_task(task_id: str, title: str, op: str, width: int,
                    difficulty: float):
    ports = (in_port("in_bus", width), out_port("out", 1))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"out is the {p['op'].upper()} reduction of all {width} "
                "bits of in_bus.")

    def rtl_body(p):
        return f"assign out = {_RED_OPS[p['op']][0]};"

    def model_step(p):
        return (
            f"value = inputs['in_bus'] & 0x{mask:X}\n"
            f"mask = 0x{mask:X}\n"
            f"return {{'out': {_RED_OPS[p['op']][1]}}}"
        )

    others = [o for o in _RED_OPS if o != op][:2]
    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB, title=title,
        difficulty=difficulty, ports=ports, params={"op": op},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: exhaustive_cmb_scenarios(
            ports[:1], rng, group_size=4),
        variants=[
            variant(f"red_{others[0]}",
                    f"uses {others[0]} reduction instead of {op}",
                    op=others[0]),
            variant(f"red_{others[1]}",
                    f"uses {others[1]} reduction instead of {op}",
                    op=others[1]),
        ],
    )


def _combo_task():
    """Three simultaneous gate outputs (HDLBits ``gates`` style)."""
    task_id = "cmb_gates_combo"
    ports = (in_port("a"), in_port("b"),
             out_port("out_and"), out_port("out_or"), out_port("out_xor"))

    def spec_body(p):
        return ("Drive three single-bit outputs at once: out_and = a AND b, "
                "out_or = a OR b, out_xor = a XOR b.")

    def rtl_body(p):
        return (
            f"assign out_and = {_OPS2[p['op_and']][0]};\n"
            f"assign out_or  = {_OPS2[p['op_or']][0]};\n"
            f"assign out_xor = {_OPS2[p['op_xor']][0]};"
        )

    def model_step(p):
        return (
            "a = inputs['a'] & 1\n"
            "b = inputs['b'] & 1\n"
            "return {\n"
            f"    'out_and': ({_OPS2[p['op_and']][1]}) & 1,\n"
            f"    'out_or': ({_OPS2[p['op_or']][1]}) & 1,\n"
            f"    'out_xor': ({_OPS2[p['op_xor']][1]}) & 1,\n"
            "}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="three basic gates with shared inputs",
        difficulty=0.12, ports=ports,
        params={"op_and": "and", "op_or": "or", "op_xor": "xor"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: exhaustive_cmb_scenarios(
            ports[:2], rng, group_size=2),
        variants=[
            variant("and_is_nand", "out_and produces NAND", op_and="nand"),
            variant("or_is_nor", "out_or produces NOR", op_or="nor"),
            variant("xor_is_xnor", "out_xor produces XNOR", op_xor="xnor"),
            variant("and_or_swapped", "out_and and out_or swapped",
                    op_and="or", op_or="and"),
        ],
    )


def build():
    return [
        _gate2_task("cmb_and2", "2-input AND gate", "and", 1, 0.04,
                    ("or", "nand")),
        _gate2_task("cmb_or2", "2-input OR gate", "or", 1, 0.04,
                    ("and", "nor")),
        _gate2_task("cmb_xor2", "2-input XOR gate", "xor", 1, 0.05,
                    ("or", "xnor")),
        _gate2_task("cmb_nand2", "2-input NAND gate", "nand", 1, 0.06,
                    ("and", "nor")),
        _gate2_task("cmb_vec_and8", "8-bit bitwise AND", "and", 8, 0.08,
                    ("or", "nand")),
        _gate2_task("cmb_vec_xnor4", "4-bit bitwise XNOR", "xnor", 4, 0.10,
                    ("xor", "nor")),
        _reduction_task("cmb_nor_reduce4", "4-input NOR reduction", "nor",
                        4, 0.08),
        _combo_task(),
    ]
