"""Priority encoders and one-hot detection tasks."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, cmb_scenarios, exhaustive_cmb_scenarios,
                    in_port, out_port, scenario, variant)

FAMILY = "encoder"


def _priority_task(task_id: str, in_width: int, difficulty: float):
    pos_width = max(1, (in_width - 1).bit_length())
    ports = (in_port("in_bus", in_width),
             out_port("pos", pos_width), out_port("valid", 1))
    pos_mask = (1 << pos_width) - 1

    def spec_body(p):
        return (f"A {in_width}-bit priority encoder. pos reports the index "
                "of the least-significant 1 bit of in_bus and valid is 1 "
                "when any input bit is set. When in_bus is zero, pos is 0 "
                "and valid is 0.")

    def rtl_body(p):
        order = (range(in_width) if p["order"] == "lsb"
                 else range(in_width - 1, -1, -1))
        valid_on = 1 if p["valid_active"] else 0
        valid_off = 1 - valid_on
        lines = ["always @(*) begin"]
        first = True
        for i in order:
            kw = "if" if first else "else if"
            first = False
            pos_val = (i + p["offset"]) & pos_mask
            lines.append(f"    {kw} (in_bus[{i}]) begin")
            lines.append(f"        pos = {pos_width}'d{pos_val};")
            lines.append(f"        valid = 1'b{valid_on};")
            lines.append("    end")
        lines.append("    else begin")
        lines.append(f"        pos = {pos_width}'d0;")
        lines.append(f"        valid = 1'b{valid_off};")
        lines.append("    end")
        lines.append("end")
        return "\n".join(lines)

    def model_step(p):
        order = (f"range({in_width})" if p["order"] == "lsb"
                 else f"range({in_width - 1}, -1, -1)")
        valid_on = 1 if p["valid_active"] else 0
        return (
            f"value = inputs['in_bus'] & 0x{(1 << in_width) - 1:X}\n"
            f"for i in {order}:\n"
            "    if (value >> i) & 1:\n"
            f"        return {{'pos': (i + {p['offset']}) & {pos_mask}, "
            f"'valid': {valid_on}}}\n"
            f"return {{'pos': 0, 'valid': {1 - valid_on}}}"
        )

    def scenarios(p, rng):
        if in_width <= 4:
            return exhaustive_cmb_scenarios(ports[:1], rng, group_size=4)
        plans = [scenario(1, "zero_and_single_bits",
                          "Zero input, then each single-bit pattern.",
                          [{"in_bus": 0}]
                          + [{"in_bus": 1 << i} for i in range(in_width)])]
        for k in range(2, 5):
            plans.append(scenario(
                k, f"random_{k - 1}", "Randomised multi-bit patterns.",
                [{"in_bus": rng.randrange(1, 1 << in_width)}
                 for _ in range(4)]))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{in_width}-bit priority encoder", difficulty=difficulty,
        ports=ports,
        params={"order": "lsb", "offset": 0, "valid_active": True},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("msb_priority",
                    "gives priority to the most-significant bit",
                    order="msb"),
            variant("pos_off_by_one", "reports pos + 1", offset=1),
            variant("valid_inverted", "valid output is inverted",
                    valid_active=False),
        ],
        reg_outputs=["pos", "valid"],
    )


def _lowest_bit_task():
    """Isolate the least-significant set bit (HDLBits ``edgecapture`` kin)."""
    task_id = "cmb_lsb_isolate8"
    ports = (in_port("in_bus", 8), out_port("out", 8))

    def spec_body(p):
        return ("out keeps only the least-significant 1 bit of in_bus "
                "(out = in_bus & (-in_bus)); zero input gives zero output.")

    def rtl_body(p):
        if p["mode"] == "msb":
            # Wrong-behaviour rendering: keeps the most-significant bit.
            lines = ["always @(*) begin", "    out = 8'd0;"]
            lines.append("    if (in_bus != 8'd0) begin")
            lines.append("        out = 8'd128;")
            for i in range(6, -1, -1):
                lines.append(f"        if (in_bus[{i}] && in_bus[7:{i + 1}]"
                             f" == {7 - i}'d0) out = 8'd{1 << i};")
            lines.append("    end")
            lines.append("end")
            return "\n".join(lines)
        expr = "in_bus & (~in_bus + 8'd1)"
        if p["mode"] == "clear":
            expr = "in_bus & (in_bus - 8'd1)"
        return f"always @(*) begin\n    out = {expr};\nend"

    def model_step(p):
        if p["mode"] == "msb":
            return (
                "value = inputs['in_bus'] & 0xFF\n"
                "if value == 0:\n"
                "    return {'out': 0}\n"
                "return {'out': 1 << (value.bit_length() - 1)}"
            )
        expr = {"lsb": "value & ((~value + 1) & 0xFF)",
                "clear": "value & ((value - 1) & 0xFF)"}[p["mode"]]
        return (
            "value = inputs['in_bus'] & 0xFF\n"
            f"return {{'out': ({expr}) & 0xFF}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="isolate the least-significant set bit of an 8-bit bus",
        difficulty=0.30, ports=ports, params={"mode": "lsb"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: cmb_scenarios(
            ports[:1], rng, n_scenarios=5, vectors_per=4),
        variants=[
            variant("clears_lsb",
                    "clears the lowest set bit instead of isolating it",
                    mode="clear"),
            variant("msb_instead", "isolates the most-significant set bit",
                    mode="msb"),
        ],
        reg_outputs=["out"],
    )


def build():
    return [
        _priority_task("cmb_prio_enc4", 4, 0.22),
        _priority_task("cmb_prio_enc8", 8, 0.28),
        _lowest_bit_task(),
    ]
