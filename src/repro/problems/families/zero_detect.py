"""Zero / all-ones / range detection tasks."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, cmb_scenarios, exhaustive_cmb_scenarios,
                    in_port, out_port, scenario, variant)

FAMILY = "zero_detect"


def _const_compare_task(task_id: str, width: int, target: str,
                        difficulty: float):
    """Detect a constant pattern (all zeros or all ones)."""
    ports = (in_port("in_bus", width), out_port("hit", 1))
    mask = (1 << width) - 1
    const = 0 if target == "zero" else mask

    def spec_body(p):
        what = "all zeros" if target == "zero" else "all ones"
        return f"hit is 1 exactly when the {width}-bit input is {what}."

    def rtl_body(p):
        op = "!=" if p["inverted"] else "=="
        ref = (p["reference"]) & mask
        return f"assign hit = in_bus {op} {width}'d{ref};"

    def model_step(p):
        op = "!=" if p["inverted"] else "=="
        return (
            f"value = inputs['in_bus'] & 0x{mask:X}\n"
            f"return {{'hit': 1 if value {op} {p['reference'] & mask} "
            f"else 0}}"
        )

    wrong_ref = 1 if target == "zero" else mask - 1
    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit {'zero' if target == 'zero' else 'all-ones'} "
              "detector",
        difficulty=difficulty, ports=ports,
        params={"inverted": False, "reference": const},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: (
            exhaustive_cmb_scenarios(ports[:1], rng, group_size=4)
            if width <= 4 else cmb_scenarios(ports[:1], rng, 4, 4)),
        variants=[
            variant("inverted", "output polarity inverted", inverted=True),
            variant("wrong_reference",
                    "compares against an off-by-one constant",
                    reference=wrong_ref),
        ],
    )


def _range_task(task_id: str, lo: int, hi: int, difficulty: float):
    ports = (in_port("in_bus", 8), out_port("in_range", 1))

    def spec_body(p):
        return ("in_range is 1 when the unsigned input lies in the "
                f"inclusive range [{p['lo']}, {p['hi']}].")

    def rtl_body(p):
        lo_op = ">" if p["exclusive"] else ">="
        hi_op = "<" if p["exclusive"] else "<="
        return (f"assign in_range = (in_bus {lo_op} 8'd{p['lo']}) && "
                f"(in_bus {hi_op} 8'd{p['hi']});")

    def model_step(p):
        lo_op = ">" if p["exclusive"] else ">="
        hi_op = "<" if p["exclusive"] else "<="
        return (
            "value = inputs['in_bus'] & 0xFF\n"
            f"return {{'in_range': 1 if (value {lo_op} {p['lo']} and "
            f"value {hi_op} {p['hi']}) else 0}}"
        )

    def scenarios(p, rng):
        boundary = [{"in_bus": v & 0xFF}
                    for v in (lo - 1, lo, lo + 1, hi - 1, hi, hi + 1)]
        inside = [{"in_bus": rng.randrange(lo, hi + 1)} for _ in range(4)]
        outside = [{"in_bus": rng.choice(
            list(range(0, lo)) + list(range(hi + 1, 256)))}
            for _ in range(4)]
        return (
            scenario(1, "boundaries", "Values at the range boundaries.",
                     boundary),
            scenario(2, "inside", "Values inside the range.", inside),
            scenario(3, "outside", "Values outside the range.", outside),
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="8-bit range detector", difficulty=difficulty, ports=ports,
        params={"lo": lo, "hi": hi, "exclusive": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("exclusive_bounds", "uses strict comparisons",
                    exclusive=True),
            variant("hi_off_by_one", "upper bound one too small",
                    hi=hi - 1),
        ],
    )


def build():
    return [
        _const_compare_task("cmb_iszero8", 8, "zero", 0.08),
        _const_compare_task("cmb_allones4", 4, "ones", 0.10),
        _range_task("cmb_inrange8", 0x20, 0x7E, 0.26),
    ]
