"""Serial pattern-detector FSM tasks (overlapping and non-overlapping).

The detector watches a serial input ``din`` and raises ``found`` for one
cycle when the last K sampled bits equal the pattern.  In overlapping mode
the bit history is kept after a match; in non-overlapping mode it is
cleared, so back-to-back overlapped occurrences are not reported.
"""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset, scenario,
                    variant)

FAMILY = "fsm_detect"


def _pattern_bits(pattern: str) -> int:
    return int(pattern, 2)


def _self_overlap(pattern: str) -> int:
    """Length of the longest proper suffix that is also a prefix."""
    for length in range(len(pattern) - 1, 0, -1):
        if pattern[:length] == pattern[-length:]:
            return length
    return 0


def _detector_task(task_id: str, pattern: str, overlap: bool,
                   difficulty: float):
    k = len(pattern)
    ports = (clock(), reset(), in_port("din", 1), out_port("found", 1))
    hist_bits = k - 1
    hist_mask = (1 << hist_bits) - 1 if hist_bits else 0

    def spec_body(p):
        mode = ("overlapping occurrences are all reported"
                if p["overlap"] else
                "matching restarts from scratch after each report "
                "(non-overlapping)")
        return ("A serial pattern detector for the bit string "
                f"'{p['pattern']}' (first bit arrives first). found is 1 "
                "for exactly one cycle, in the cycle after the last "
                f"pattern bit was sampled; {mode}. Synchronous reset "
                "clears the matcher.")

    def rtl_body(p):
        pk = len(p["pattern"])
        pat = _pattern_bits(p["pattern"])
        p_hist_bits = pk - 1
        window = f"{{hist[{p_hist_bits - 1}:0], din}}"
        # A match needs pk real bits since reset (or since the previous
        # match in non-overlapping mode); `fill` counts the valid history
        # length, which prevents ghost matches against the cleared zeros.
        match = (f"(fill == 3'd{pk - 1} && {window} == {pk}'d{pat})")
        lines = [
            f"reg [{p_hist_bits - 1}:0] hist;",
            "reg [2:0] fill;",
            "always @(posedge clk) begin",
            "    if (reset) begin",
            f"        hist <= {p_hist_bits}'d0;",
            "        fill <= 3'd0;",
            "        found <= 1'b0;",
            "    end else begin",
            f"        if ({match}) begin",
            "            found <= 1'b1;",
        ]
        if p["overlap"]:
            lines.append(f"            hist <= {window};")
            lines.append("            fill <= fill;")
        else:
            lines.append(f"            hist <= {p_hist_bits}'d0;")
            lines.append("            fill <= 3'd0;")
        lines.extend([
            "        end else begin",
            "            found <= 1'b0;",
            f"            hist <= {window};",
            f"            fill <= (fill == 3'd{pk - 1}) ? fill "
            ": fill + 3'd1;",
            "        end",
            "    end",
            "end",
        ])
        return "\n".join(lines)

    def model_step(p):
        pk = len(p["pattern"])
        pat = _pattern_bits(p["pattern"])
        p_hist_mask = (1 << (pk - 1)) - 1
        window = f"((self.hist << 1) | din) & 0x{(1 << pk) - 1:X}"
        if p["overlap"]:
            on_match = (f"        self.hist = window & 0x{p_hist_mask:X}")
        else:
            on_match = ("        self.hist = 0\n"
                        "        self.fill = 0")
        return "\n".join([
            "din = inputs['din'] & 1",
            "if inputs['reset'] & 1:",
            "    self.hist = 0",
            "    self.fill = 0",
            "    self.found = 0",
            "else:",
            f"    window = {window}",
            f"    if self.fill == {pk - 1} and window == {pat}:",
            "        self.found = 1",
            on_match,
            "    else:",
            "        self.found = 0",
            f"        self.hist = window & 0x{p_hist_mask:X}",
            f"        self.fill = min(self.fill + 1, {pk - 1})",
            "return {'found': self.found}",
        ])

    def scenarios(p, rng):
        golden_pattern = pattern  # scenarios always target the golden spec
        def bits_of(s):
            return [int(ch) for ch in s]

        def cycles(bit_list, lead_reset=2):
            out = []
            for i, b in enumerate(bit_list):
                out.append({"reset": 1 if i < lead_reset else 0,
                            "din": b if i >= lead_reset else rng.randrange(2)})
            return out

        noise = [rng.randrange(2) for _ in range(3)]
        exact = cycles([0, 0] + bits_of(golden_pattern) + noise)
        double = cycles([0, 0] + bits_of(golden_pattern)
                        + bits_of(golden_pattern) + noise)
        # Overlapped occurrence: append the suffix that re-completes the
        # pattern using its own prefix (classic 101 -> 10101 case).  For
        # patterns without self-overlap this degenerates to back-to-back.
        shared = _self_overlap(golden_pattern)
        overlap_stream = bits_of(golden_pattern) + bits_of(
            golden_pattern[shared:]) + bits_of(golden_pattern[shared:])
        near_miss = bits_of(golden_pattern)[:-1] + [
            1 - bits_of(golden_pattern)[-1]]
        random_stream = [rng.randrange(2) for _ in range(3 * k + 4)]
        mid_reset = (cycles([0, 0] + bits_of(golden_pattern)[:-1])
                     + [{"reset": 1, "din": rng.randrange(2)}]
                     + [{"reset": 0, "din": b}
                        for b in bits_of(golden_pattern) + noise])
        return (
            scenario(1, "exact_match",
                     "Reset, then feed exactly one occurrence.", exact),
            scenario(2, "back_to_back",
                     "Two consecutive occurrences.", double),
            scenario(3, "overlapped",
                     "A stream whose occurrences share bits.",
                     cycles([0, 0] + overlap_stream + noise)),
            scenario(4, "near_miss",
                     "A stream that misses the pattern by the last bit.",
                     cycles([0, 0] + near_miss + noise)),
            scenario(5, "random_stream", "A random bit stream.",
                     cycles([0, 0] + random_stream)),
            scenario(6, "reset_mid_pattern",
                     "Reset asserted while a match is in progress.",
                     mid_reset),
        )

    flipped = pattern[:-1] + ("0" if pattern[-1] == "1" else "1")
    first_flipped = ("0" if pattern[0] == "1" else "1") + pattern[1:]
    # The overlap-mode misconception is only observable for patterns that
    # actually self-overlap; otherwise use a different plausible mistake.
    if _self_overlap(pattern) > 0:
        mode_variant = variant(
            "overlap_flipped",
            ("forgets history after a match" if overlap
             else "keeps history after a match"),
            overlap=not overlap)
    else:
        mode_variant = variant(
            "first_bit_flipped", f"matches {first_flipped} instead",
            pattern=first_flipped)
    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"serial detector for pattern {pattern} "
              f"({'overlapping' if overlap else 'non-overlapping'})",
        difficulty=difficulty, ports=ports,
        params={"pattern": pattern, "overlap": overlap},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.hist = 0\nself.fill = 0\nself.found = 0",
        model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            mode_variant,
            variant("last_bit_flipped",
                    f"matches {flipped} instead", pattern=flipped),
        ],
        reg_outputs=["found"],
    )


# (pattern, overlapping, difficulty)
_CONFIGS = (
    ("101", True, 0.45),
    ("110", False, 0.50),
    ("1001", True, 0.55),
    ("111", True, 0.42),
    ("0110", False, 0.58),
    ("1101", True, 0.55),
    ("010", False, 0.48),
    ("1010", True, 0.57),
    ("1000", False, 0.52),
    ("0011", True, 0.50),
    ("011", True, 0.44),
    ("100", False, 0.46),
    ("0101", True, 0.56),
    ("1100", False, 0.54),
)


def build():
    tasks = []
    for idx, (pattern, overlap, difficulty) in enumerate(_CONFIGS):
        mode = "ov" if overlap else "no"
        tasks.append(_detector_task(
            f"seq_detect_{pattern}_{mode}", pattern, overlap, difficulty))
    return tasks
