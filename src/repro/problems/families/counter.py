"""Counter tasks: binary up/down, modulo-N, loadable, saturating."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "counter"


def _up_counter_task(task_id: str, width: int, step: int, has_enable: bool,
                     difficulty: float):
    inputs = [clock(), reset()]
    if has_enable:
        inputs.append(in_port("en", 1))
    ports = tuple(inputs + [out_port("q", width)])
    mask = (1 << width) - 1

    def spec_body(p):
        text = (f"A {width}-bit up counter: q increments by {p['step']} "
                f"every rising clock edge and wraps modulo 2^{width}. "
                f"A synchronous reset clears q to {p['reset_val']}.")
        if has_enable:
            text += " The counter only advances while en is 1."
        return text

    def rtl_body(p):
        advance = f"q <= q + {width}'d{p['step'] & mask};"
        if has_enable and not p["ignore_enable"]:
            advance = f"if (en) {advance}"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d{p['reset_val'] & mask};\n"
                f"    else {advance}\n"
                "end")

    def model_step(p):
        lines = ["if inputs['reset'] & 1:",
                 f"    self.q = {p['reset_val'] & mask}"]
        gate = ("elif inputs['en'] & 1:"
                if has_enable and not p["ignore_enable"] else "else:")
        lines.append(gate)
        lines.append(f"    self.q = (self.q + {p['step']}) & 0x{mask:X}")
        lines.append("return {'q': self.q}")
        return "\n".join(lines)

    variants = [
        variant("reset_to_one", "reset loads 1 instead of 0", reset_val=1),
        variant("double_step", "increments by 2", step=2),
    ]
    if has_enable:
        variants.append(variant("enable_ignored",
                                "counts even when disabled",
                                ignore_enable=True))

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit up counter" + (" with enable"
                                           if has_enable else ""),
        difficulty=difficulty, ports=ports,
        params={"step": step, "reset_val": 0, "ignore_enable": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5,
            cycles_per=7),
        variants=variants,
        reg_outputs=["q"],
    )


def _down_counter_task(task_id: str, width: int, difficulty: float):
    ports = (clock(), reset(), out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {width}-bit down counter: q decrements every rising "
                f"clock edge and wraps from 0 to {mask}. Synchronous "
                f"reset loads {p['reset_val']}.")

    def rtl_body(p):
        op = "+" if p["counts_up"] else "-"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d{p['reset_val'] & mask};\n"
                f"    else q <= q {op} {width}'d1;\n"
                "end")

    def model_step(p):
        op = "+" if p["counts_up"] else "-"
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.q = {p['reset_val'] & mask}\n"
            "else:\n"
            f"    self.q = (self.q {op} 1) & 0x{mask:X}\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit down counter", difficulty=difficulty,
        ports=ports, params={"reset_val": mask, "counts_up": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4, cycles_per=8),
        variants=[
            variant("counts_up", "counts upwards instead", counts_up=True),
            variant("reset_to_zero", "reset loads 0", reset_val=0),
        ],
        reg_outputs=["q"],
    )


def _updown_task(task_id: str, width: int, difficulty: float):
    ports = (clock(), reset(), in_port("up", 1), out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {width}-bit up/down counter: at each rising edge q "
                "increments when up is 1 and decrements when up is 0; "
                "synchronous reset clears q to 0.")

    def rtl_body(p):
        cond = "up" if not p["inverted_dir"] else "!up"
        body = (f"q <= {cond} ? q + {width}'d1 : q - {width}'d1;"
                if not p["stuck_up"] else f"q <= q + {width}'d1;")
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d0;\n"
                f"    else {body}\n"
                "end")

    def model_step(p):
        if p["stuck_up"]:
            move = "self.q = (self.q + 1) & 0x%X" % mask
        else:
            cond = ("inputs['up'] & 1" if not p["inverted_dir"]
                    else "not (inputs['up'] & 1)")
            move = (f"self.q = ((self.q + 1) if {cond} else (self.q - 1))"
                    f" & 0x{mask:X}")
        return (
            "if inputs['reset'] & 1:\n"
            "    self.q = 0\n"
            "else:\n"
            f"    {move}\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit up/down counter", difficulty=difficulty,
        ports=ports,
        params={"inverted_dir": False, "stuck_up": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=7),
        variants=[
            variant("direction_inverted", "up input sense inverted",
                    inverted_dir=True),
            variant("always_up", "direction input ignored", stuck_up=True),
        ],
        reg_outputs=["q"],
    )


def _mod_counter_task(task_id: str, modulo: int, has_enable: bool,
                      difficulty: float):
    width = max(1, (modulo - 1).bit_length())
    inputs = [clock(), reset()]
    if has_enable:
        inputs.append(in_port("en", 1))
    ports = tuple(inputs + [out_port("q", width)])
    mask = (1 << width) - 1

    def spec_body(p):
        text = (f"A modulo-{modulo} counter: q counts 0, 1, ..., "
                f"{modulo - 1}, 0, ... advancing each rising clock edge; "
                "synchronous reset clears q to 0.")
        if has_enable:
            text += " The counter only advances while en is 1."
        return text

    def rtl_body(p):
        wrap_at = p["wrap_at"]
        wrap_to = p["wrap_to"]
        advance = (f"q <= (q == {width}'d{(wrap_at - 1) & mask}) ? "
                   f"{width}'d{wrap_to & mask} : q + {width}'d1;")
        if has_enable and not p["ignore_enable"]:
            advance = f"if (en) {advance}"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d0;\n"
                f"    else {advance}\n"
                "end")

    def model_step(p):
        lines = ["if inputs['reset'] & 1:", "    self.q = 0"]
        gate = ("elif inputs['en'] & 1:"
                if has_enable and not p["ignore_enable"] else "else:")
        lines.append(gate)
        lines.append(f"    self.q = ({p['wrap_to'] & mask} "
                     f"if self.q == {(p['wrap_at'] - 1) & mask} "
                     f"else (self.q + 1) & 0x{mask:X})")
        lines.append("return {'q': self.q}")
        return "\n".join(lines)

    variants = [
        variant("wraps_late", f"counts up to {modulo} before wrapping",
                wrap_at=modulo + 1),
        variant("wraps_to_one", "wraps back to 1 instead of 0", wrap_to=1),
    ]
    if has_enable:
        variants.append(variant("enable_ignored",
                                "counts even when disabled",
                                ignore_enable=True))
    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"modulo-{modulo} counter" + (" with enable"
                                            if has_enable else ""),
        difficulty=difficulty, ports=ports,
        params={"wrap_at": modulo, "wrap_to": 0, "ignore_enable": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5,
            cycles_per=modulo + 4),
        variants=variants,
        reg_outputs=["q"],
    )


def _load_counter_task(task_id: str, width: int, difficulty: float):
    ports = (clock(), reset(), in_port("load", 1), in_port("d", width),
             out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A loadable {width}-bit counter: when load is 1, q takes "
                "d at the rising edge; otherwise q increments. Synchronous "
                "reset has priority and clears q.")

    def rtl_body(p):
        if p["ignore_load"]:
            body = f"q <= q + {width}'d1;"
        elif p["load_plus_one"]:
            body = f"if (load) q <= d + {width}'d1; else q <= q + {width}'d1;"
        else:
            body = f"if (load) q <= d; else q <= q + {width}'d1;"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d0;\n"
                f"    else {body}\n"
                "end")

    def model_step(p):
        if p["ignore_load"]:
            body = f"    self.q = (self.q + 1) & 0x{mask:X}"
        elif p["load_plus_one"]:
            body = ("    if inputs['load'] & 1:\n"
                    f"        self.q = (inputs['d'] + 1) & 0x{mask:X}\n"
                    "    else:\n"
                    f"        self.q = (self.q + 1) & 0x{mask:X}")
        else:
            body = ("    if inputs['load'] & 1:\n"
                    f"        self.q = inputs['d'] & 0x{mask:X}\n"
                    "    else:\n"
                    f"        self.q = (self.q + 1) & 0x{mask:X}")
        return (
            "if inputs['reset'] & 1:\n"
            "    self.q = 0\n"
            "else:\n"
            + body + "\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"loadable {width}-bit counter", difficulty=difficulty,
        ports=ports,
        params={"ignore_load": False, "load_plus_one": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=7,
            hold_zero_prob=0.4),
        variants=[
            variant("load_ignored", "never loads", ignore_load=True),
            variant("load_off_by_one", "loads d + 1", load_plus_one=True),
        ],
        reg_outputs=["q"],
    )


def _sat_counter_task(task_id: str, width: int, difficulty: float):
    ports = (clock(), reset(), out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A saturating {width}-bit counter: q increments each "
                f"rising edge and holds at {mask} once reached; "
                "synchronous reset clears q to 0.")

    def rtl_body(p):
        limit = p["limit"] & mask
        if p["wraps"]:
            body = f"q <= q + {width}'d1;"
        else:
            body = (f"q <= (q == {width}'d{limit}) ? {width}'d{limit} "
                    f": q + {width}'d1;")
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d0;\n"
                f"    else {body}\n"
                "end")

    def model_step(p):
        limit = p["limit"] & mask
        if p["wraps"]:
            move = f"self.q = (self.q + 1) & 0x{mask:X}"
        else:
            move = (f"self.q = {limit} if self.q >= {limit} "
                    "else self.q + 1")
        return (
            "if inputs['reset'] & 1:\n"
            "    self.q = 0\n"
            "else:\n"
            f"    {move}\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"saturating {width}-bit counter", difficulty=difficulty,
        ports=ports, params={"limit": mask, "wraps": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4,
            cycles_per=(1 << width) + 4),
        variants=[
            variant("wraps", "wraps around instead of saturating",
                    wraps=True),
            variant("saturates_early", "holds one below the maximum",
                    limit=mask - 1),
        ],
        reg_outputs=["q"],
    )


def build():
    return [
        _up_counter_task("seq_count4_up", 4, 1, False, 0.18),
        _up_counter_task("seq_count8_en", 8, 1, True, 0.30),
        _up_counter_task("seq_count8_by3", 8, 3, False, 0.25),
        _down_counter_task("seq_count4_down", 4, 0.22),
        _updown_task("seq_count4_updown", 4, 0.35),
        _mod_counter_task("seq_mod10", 10, False, 0.40),
        _mod_counter_task("seq_mod6_en", 6, True, 0.48),
        _mod_counter_task("seq_mod3", 3, False, 0.35),
        _mod_counter_task("seq_mod5", 5, False, 0.38),
        _mod_counter_task("seq_mod12", 12, False, 0.42),
        _load_counter_task("seq_count8_load", 8, 0.38),
        _sat_counter_task("seq_count3_sat", 3, 0.33),
    ]
