"""Miscellaneous FSM tasks: timed traffic light, set/reset state, a
round-robin arbiter, a coin accumulator and a direction walker."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "fsm_misc"


def _traffic_task():
    task_id = "seq_traffic"
    ports = (clock(), reset(), out_port("light", 2))

    def spec_body(p):
        g, y, r = p["dwell"]
        return ("A timed traffic-light FSM cycling green (light=0) for "
                f"{g} cycles, yellow (light=1) for {y} cycle(s), red "
                f"(light=2) for {r} cycles, then back to green. "
                "Synchronous reset enters green with a fresh timer.")

    def rtl_body(p):
        g, y, r = p["dwell"]
        order = p["order"]
        cases = []
        for idx, (state, dwell) in enumerate(zip(order, (g, y, r))):
            nxt = order[(idx + 1) % 3]
            cases.append(
                f"            2'd{state}: begin\n"
                f"                if (timer == 3'd{dwell - 1}) begin\n"
                f"                    light <= 2'd{nxt};\n"
                "                    timer <= 3'd0;\n"
                "                end else timer <= timer + 3'd1;\n"
                "            end")
        return (
            "reg [2:0] timer;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            f"        light <= 2'd{order[0]};\n"
            "        timer <= 3'd0;\n"
            "    end else begin\n"
            "        case (light)\n"
            + "\n".join(cases) + "\n"
            "            default: begin\n"
            f"                light <= 2'd{order[0]};\n"
            "                timer <= 3'd0;\n"
            "            end\n"
            "        endcase\n"
            "    end\n"
            "end")

    def model_step(p):
        g, y, r = p["dwell"]
        order = p["order"]
        dwell_map = {order[0]: g, order[1]: y, order[2]: r}
        nxt_map = {order[i]: order[(i + 1) % 3] for i in range(3)}
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.light = {order[0]}\n"
            "    self.timer = 0\n"
            "else:\n"
            f"    dwell = {dwell_map!r}[self.light]\n"
            "    if self.timer == dwell - 1:\n"
            f"        self.light = {nxt_map!r}[self.light]\n"
            "        self.timer = 0\n"
            "    else:\n"
            "        self.timer = self.timer + 1\n"
            "return {'light': self.light}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="timed traffic-light controller", difficulty=0.62,
        ports=ports, params={"dwell": (3, 1, 2), "order": (0, 1, 2)},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: f"self.light = {p['order'][0]}\nself.timer = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4, cycles_per=16),
        variants=[
            variant("dwell_swapped", "green and red dwell times swapped",
                    dwell=(2, 1, 3)),
            variant("yellow_skipped", "yellow lasts two cycles",
                    dwell=(3, 2, 2)),
            variant("rotates_backwards",
                    "cycles green, red, yellow", order=(0, 2, 1)),
        ],
        reg_outputs=["light"],
    )


def _onoff_task():
    task_id = "seq_onoff"
    ports = (clock(), reset(), in_port("on", 1), in_port("off", 1),
             out_port("state", 1))

    def spec_body(p):
        return ("A set/reset state machine: state becomes 1 when on is "
                "sampled high and 0 when off is sampled high; when both "
                "are high, off wins. Synchronous reset clears state.")

    def rtl_body(p):
        if p["priority"] == "on":
            body = ("if (on) state <= 1'b1;\n"
                    "        else if (off) state <= 1'b0;")
        else:
            body = ("if (off) state <= 1'b0;\n"
                    "        else if (on) state <= 1'b1;")
        if p["toggle_both"]:
            body = ("if (on && off) state <= ~state;\n"
                    "        else if (on) state <= 1'b1;\n"
                    "        else if (off) state <= 1'b0;")
        return ("always @(posedge clk) begin\n"
                "    if (reset) state <= 1'b0;\n"
                f"    else begin\n        {body}\n    end\n"
                "end")

    def model_step(p):
        if p["toggle_both"]:
            body = ("if on and off:\n"
                    "        self.state ^= 1\n"
                    "    elif on:\n"
                    "        self.state = 1\n"
                    "    elif off:\n"
                    "        self.state = 0")
        elif p["priority"] == "on":
            body = ("if on:\n"
                    "        self.state = 1\n"
                    "    elif off:\n"
                    "        self.state = 0")
        else:
            body = ("if off:\n"
                    "        self.state = 0\n"
                    "    elif on:\n"
                    "        self.state = 1")
        return (
            "on = inputs['on'] & 1\n"
            "off = inputs['off'] & 1\n"
            "if inputs['reset'] & 1:\n"
            "    self.state = 0\n"
            "else:\n"
            f"    {body}\n"
            "return {'state': self.state}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="set/reset on-off controller", difficulty=0.30,
        ports=ports, params={"priority": "off", "toggle_both": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.state = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=7,
            hold_zero_prob=0.35),
        variants=[
            variant("on_wins", "simultaneous requests turn the state on",
                    priority="on"),
            variant("toggles_on_conflict",
                    "simultaneous requests toggle the state",
                    toggle_both=True),
        ],
        reg_outputs=["state"],
    )


def _arbiter_task():
    task_id = "seq_arbiter2"
    ports = (clock(), reset(), in_port("req", 2), out_port("grant", 2))

    def spec_body(p):
        return ("A two-requester round-robin arbiter. Each cycle at most "
                "one grant bit is high, matching a pending request bit. "
                "When both request, the requester that was NOT granted "
                "most recently wins. Synchronous reset clears the grant "
                "and makes requester 0 the next preferred winner.")

    def rtl_body(p):
        if p["fixed_priority"]:
            conflict = "grant <= 2'b01;"
        else:
            conflict = ("grant <= last ? 2'b01 : 2'b10;\n"
                        "            last <= last ? 1'b0 : 1'b1;")
        single = ("begin grant <= req; last <= req[1]; end"
                  if not p["fixed_priority"] else "grant <= req;")
        return (
            "reg last;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            "        grant <= 2'b00;\n"
            "        last <= 1'b1;\n"
            "    end else begin\n"
            "        if (req == 2'b11) begin\n"
            f"            {conflict}\n"
            "        end\n"
            f"        else if (req != 2'b00) {single}\n"
            "        else grant <= 2'b00;\n"
            "    end\n"
            "end")

    def model_step(p):
        if p["fixed_priority"]:
            conflict = "self.grant = 0b01"
        else:
            conflict = ("self.grant = 0b01 if self.last else 0b10\n"
                        "        self.last = 0 if self.last else 1")
        single = ("self.grant = req\n"
                  "        self.last = (req >> 1) & 1"
                  if not p["fixed_priority"] else "self.grant = req")
        return (
            "req = inputs['req'] & 3\n"
            "if inputs['reset'] & 1:\n"
            "    self.grant = 0\n"
            "    self.last = 1\n"
            "else:\n"
            "    if req == 3:\n"
            f"        {conflict}\n"
            "    elif req != 0:\n"
            f"        {single}\n"
            "    else:\n"
            "        self.grant = 0\n"
            "return {'grant': self.grant}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="two-input round-robin arbiter", difficulty=0.68,
        ports=ports, params={"fixed_priority": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.grant = 0\nself.last = 1",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=6, cycles_per=8),
        variants=[
            variant("fixed_priority",
                    "requester 0 always wins conflicts",
                    fixed_priority=True),
        ],
        reg_outputs=["grant"],
    )


def _vendor_task():
    task_id = "seq_vendor"
    ports = (clock(), reset(), in_port("coin", 2), out_port("dispense", 1))

    def spec_body(p):
        return ("A vending accumulator: coin (0-3) is added to a running "
                f"total each cycle. When the total reaches {p['price']} or "
                "more, dispense pulses high for that cycle and the total "
                "restarts from zero (overpayment is not carried over). "
                "Synchronous reset clears the total.")

    def rtl_body(p):
        cmp_op = ">" if p["strict"] else ">="
        carry = ("total <= total + {{2'b00, coin}} - 4'd{price};"
                 .format(price=p["price"]) if p["keep_change"]
                 else "total <= 4'd0;")
        return (
            "reg [3:0] total;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            "        total <= 4'd0;\n"
            "        dispense <= 1'b0;\n"
            "    end else begin\n"
            f"        if (total + {{2'b00, coin}} {cmp_op} "
            f"4'd{p['price']}) begin\n"
            "            dispense <= 1'b1;\n"
            f"            {carry}\n"
            "        end else begin\n"
            "            dispense <= 1'b0;\n"
            "            total <= total + {2'b00, coin};\n"
            "        end\n"
            "    end\n"
            "end")

    def model_step(p):
        cmp_op = ">" if p["strict"] else ">="
        carry = (f"self.total = (self.total + coin - {p['price']}) & 0xF"
                 if p["keep_change"] else "self.total = 0")
        return (
            "coin = inputs['coin'] & 3\n"
            "if inputs['reset'] & 1:\n"
            "    self.total = 0\n"
            "    self.dispense = 0\n"
            "else:\n"
            f"    if (self.total + coin) {cmp_op} {p['price']}:\n"
            "        self.dispense = 1\n"
            f"        {carry}\n"
            "    else:\n"
            "        self.dispense = 0\n"
            "        self.total = (self.total + coin) & 0xF\n"
            "return {'dispense': self.dispense}"
        )

    def scenarios(p, rng):
        from ._base import scenario as make_scenario
        base = seq_scenarios(ports, rng, reset_name="reset",
                             n_scenarios=3, cycles_per=10)
        # Directed streams: exact payment (discriminates >= vs >) and
        # overpayment followed by small coins (discriminates the
        # keep-change misconception).
        exact = [3, 3, 2, 0, 3, 3, 2, 0]
        overpay = [3, 3, 3, 3, 3, 1, 1, 1, 1, 1]
        directed = []
        for name, desc, coins in (
                ("exact_payment", "Coins summing exactly to the price.",
                 exact),
                ("overpayment_then_trickle",
                 "Overpay, then insert small coins.", overpay)):
            vectors = [{"reset": 1, "coin": 0}, {"reset": 1, "coin": 0}]
            vectors += [{"reset": 0, "coin": c} for c in coins]
            directed.append((name, desc, vectors))
        plans = list(base)
        for offset, (name, desc, vectors) in enumerate(directed):
            plans.append(make_scenario(len(base) + offset + 1, name, desc,
                                       vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="vending-machine accumulator", difficulty=0.60,
        ports=ports,
        params={"price": 8, "strict": False, "keep_change": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.total = 0\nself.dispense = 0",
        model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("strict_compare", "dispenses only above the price",
                    strict=True),
            variant("keeps_change", "carries overpayment into the total",
                    keep_change=True),
        ],
        reg_outputs=["dispense"],
    )


def _walker_task():
    task_id = "seq_walker"
    ports = (clock(), reset(), in_port("bump_left", 1),
             in_port("bump_right", 1), out_port("dir_right", 1))

    def spec_body(p):
        return ("A walker state machine: dir_right reports the walking "
                "direction (1 = right). Walking left, a bump_left turns "
                "it right; walking right, a bump_right turns it left; "
                "bumps from behind are ignored, and simultaneous bumps "
                "reverse the direction. Reset starts walking left.")

    def rtl_body(p):
        if p["sticky"]:
            turn = ("if (bump_left) dir_right <= 1'b1;\n"
                    "        else if (bump_right) dir_right <= 1'b0;")
        else:
            turn = ("if (!dir_right && bump_left) dir_right <= 1'b1;\n"
                    "        else if (dir_right && bump_right) "
                    "dir_right <= 1'b0;")
        init = "1'b1" if p["starts_right"] else "1'b0"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) dir_right <= {init};\n"
                f"    else begin\n        {turn}\n    end\n"
                "end")

    def model_step(p):
        if p["sticky"]:
            turn = ("if bl:\n"
                    "        self.dir_right = 1\n"
                    "    elif br:\n"
                    "        self.dir_right = 0")
        else:
            turn = ("if not self.dir_right and bl:\n"
                    "        self.dir_right = 1\n"
                    "    elif self.dir_right and br:\n"
                    "        self.dir_right = 0")
        return (
            "bl = inputs['bump_left'] & 1\n"
            "br = inputs['bump_right'] & 1\n"
            "if inputs['reset'] & 1:\n"
            f"    self.dir_right = {1 if p['starts_right'] else 0}\n"
            "else:\n"
            f"    {turn}\n"
            "return {'dir_right': self.dir_right}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="bumping walker direction FSM", difficulty=0.52,
        ports=ports, params={"sticky": False, "starts_right": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.dir_right = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=8),
        variants=[
            variant("bumps_from_behind",
                    "reacts to bumps regardless of direction",
                    sticky=True),
            variant("starts_right", "reset starts walking right",
                    starts_right=True),
        ],
        reg_outputs=["dir_right"],
    )


def build():
    return [
        _traffic_task(),
        _onoff_task(),
        _arbiter_task(),
        _vendor_task(),
        _walker_task(),
    ]
