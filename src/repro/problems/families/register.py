"""Wide register tasks (enables, byte lanes)."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "register"


def _register_task(task_id: str, width: int, difficulty: float):
    ports = (clock(), reset(), in_port("en", 1), in_port("d", width),
             out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {width}-bit register with write enable: q loads d at "
                "the rising edge while en is 1 and holds otherwise. "
                "Synchronous reset clears q.")

    def rtl_body(p):
        load = "q <= d;" if not p["inverted_en"] else "q <= d;"
        cond = "!en" if p["inverted_en"] else "en"
        if p["ignore_enable"]:
            return ("always @(posedge clk) begin\n"
                    f"    if (reset) q <= {width}'d0;\n"
                    "    else q <= d;\n"
                    "end")
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d0;\n"
                f"    else if ({cond}) {load}\n"
                "end")

    def model_step(p):
        if p["ignore_enable"]:
            gate = "else:"
        elif p["inverted_en"]:
            gate = "elif not (inputs['en'] & 1):"
        else:
            gate = "elif inputs['en'] & 1:"
        return (
            "if inputs['reset'] & 1:\n"
            "    self.q = 0\n"
            f"{gate}\n"
            f"    self.q = inputs['d'] & 0x{mask:X}\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit register with write enable",
        difficulty=difficulty, ports=ports,
        params={"ignore_enable": False, "inverted_en": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=6),
        variants=[
            variant("enable_ignored", "loads every cycle",
                    ignore_enable=True),
            variant("enable_inverted", "loads while en is 0",
                    inverted_en=True),
        ],
        reg_outputs=["q"],
    )


def _byte_enable_task():
    task_id = "seq_reg16_byteen"
    ports = (clock(), reset(), in_port("be", 2), in_port("d", 16),
             out_port("q", 16))

    def spec_body(p):
        return ("A 16-bit register with per-byte write enables: be[0] "
                "loads the low byte q[7:0] from d[7:0], be[1] loads the "
                "high byte q[15:8] from d[15:8]; each byte holds when its "
                "enable is 0. Synchronous reset clears q.")

    def rtl_body(p):
        lo_bit, hi_bit = (1, 0) if p["lanes_swapped"] else (0, 1)
        return ("always @(posedge clk) begin\n"
                "    if (reset) q <= 16'd0;\n"
                "    else begin\n"
                f"        if (be[{lo_bit}]) q[7:0] <= d[7:0];\n"
                f"        if (be[{hi_bit}]) q[15:8] <= d[15:8];\n"
                "    end\n"
                "end")

    def model_step(p):
        lo_bit, hi_bit = (1, 0) if p["lanes_swapped"] else (0, 1)
        return (
            "be = inputs['be'] & 3\n"
            "d = inputs['d'] & 0xFFFF\n"
            "if inputs['reset'] & 1:\n"
            "    self.q = 0\n"
            "else:\n"
            f"    if (be >> {lo_bit}) & 1:\n"
            "        self.q = (self.q & 0xFF00) | (d & 0x00FF)\n"
            f"    if (be >> {hi_bit}) & 1:\n"
            "        self.q = (self.q & 0x00FF) | (d & 0xFF00)\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="16-bit register with byte enables", difficulty=0.40,
        ports=ports, params={"lanes_swapped": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=6),
        variants=[
            variant("lanes_swapped", "byte-enable bits control the wrong "
                    "byte lanes", lanes_swapped=True),
        ],
        reg_outputs=["q"],
    )


def build():
    return [
        _register_task("seq_reg8_en", 8, 0.22),
        _register_task("seq_reg32_en", 32, 0.26),
        _byte_enable_task(),
    ]
