"""D flip-flop tasks (plain, resets, enables)."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "dff"


def _plain_dff_task():
    """``q <= d`` — the only task whose state needs no reset."""
    task_id = "seq_dff"
    ports = (clock(), in_port("d", 1), out_port("q", 1))

    def spec_body(p):
        return "A single D flip-flop: q takes the value of d at every " \
               "rising clock edge."

    def rtl_body(p):
        rhs = "~d" if p["inverted"] else "d"
        return ("always @(posedge clk) begin\n"
                f"    q <= {rhs};\n"
                "end")

    def model_step(p):
        rhs = "(~inputs['d']) & 1" if p["inverted"] else "inputs['d'] & 1"
        return (
            f"self.q = {rhs}\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ, title="D flip-flop",
        difficulty=0.08, ports=ports, params={"inverted": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            [p_ for p_ in ports if p_.direction == "input"], rng,
            reset_name=None, n_scenarios=4, cycles_per=6, reset_cycles=0),
        variants=[
            variant("inverted", "stores the complement of d",
                    inverted=True),
        ],
        reg_outputs=["q"],
    )


def _dff_reset_task(task_id: str, width: int, asynchronous: bool,
                    has_enable: bool, difficulty: float):
    reset_name = "areset" if asynchronous else "reset"
    inputs = [clock(), reset(reset_name), in_port("d", width)]
    if has_enable:
        inputs.append(in_port("en", 1))
    ports = tuple(inputs + [out_port("q", width)])
    mask = (1 << width) - 1

    def spec_body(p):
        kind = "asynchronous" if asynchronous else "synchronous"
        text = (f"A {width}-bit D register with active-high {kind} reset "
                f"({reset_name} forces q to {p['reset_val']}).")
        if has_enable:
            text += " The register only loads d when en is 1."
        return text

    def rtl_body(p):
        sensitivity = (f"posedge clk or posedge {reset_name}"
                       if asynchronous else "posedge clk")
        reset_const = f"{width}'d{p['reset_val'] & mask}"
        load = "q <= d;"
        if has_enable and not p["ignore_enable"]:
            load = "if (en) q <= d;"
        if p["priority_swapped"] and has_enable:
            # Misconception: enable gates the reset too.
            return (f"always @({sensitivity}) begin\n"
                    "    if (en) begin\n"
                    f"        if ({reset_name}) q <= {reset_const};\n"
                    "        else q <= d;\n"
                    "    end\n"
                    "end")
        return (f"always @({sensitivity}) begin\n"
                f"    if ({reset_name}) q <= {reset_const};\n"
                f"    else {load}\n"
                "end")

    def model_step(p):
        lines = []
        reset_assign = f"self.q = {p['reset_val'] & mask}"
        load = f"self.q = inputs['d'] & 0x{mask:X}"
        if p["priority_swapped"] and has_enable:
            lines.append("if inputs['en'] & 1:")
            lines.append(f"    if inputs['{reset_name}'] & 1:")
            lines.append(f"        {reset_assign}")
            lines.append("    else:")
            lines.append(f"        {load}")
        else:
            lines.append(f"if inputs['{reset_name}'] & 1:")
            lines.append(f"    {reset_assign}")
            if has_enable and not p["ignore_enable"]:
                lines.append("elif inputs['en'] & 1:")
                lines.append(f"    {load}")
            else:
                lines.append("else:")
                lines.append(f"    {load}")
        lines.append("return {'q': self.q}")
        return "\n".join(lines)

    variants = [
        variant("reset_to_ones", "reset drives all-ones",
                reset_val=mask),
    ]
    if has_enable:
        variants.append(variant("enable_ignored", "loads every cycle",
                                ignore_enable=True))
        variants.append(variant("enable_gates_reset",
                                "reset only works while enabled",
                                priority_swapped=True))
    else:
        variants.append(variant("reset_to_one", "reset drives the value 1",
                                reset_val=1))

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=(f"{width}-bit D register with "
               f"{'async' if asynchronous else 'sync'} reset"
               + (" and enable" if has_enable else "")),
        difficulty=difficulty, ports=ports,
        params={"reset_val": 0, "ignore_enable": False,
                "priority_swapped": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            [p_ for p_ in ports if p_.direction == "input"], rng,
            reset_name=reset_name, n_scenarios=5, cycles_per=6),
        variants=variants,
        reg_outputs=["q"],
    )


def build():
    return [
        _plain_dff_task(),
        _dff_reset_task("seq_dff_sr", 1, False, False, 0.15),
        _dff_reset_task("seq_dff8_ar", 8, True, False, 0.20),
        _dff_reset_task("seq_dff8_en", 8, False, True, 0.25),
        _dff_reset_task("seq_dff4_en_ar", 4, True, True, 0.30),
    ]
