"""Serial bit-stream processing tasks."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "serial"


def _running_parity_task():
    task_id = "seq_serial_parity"
    ports = (clock(), reset(), in_port("din", 1), out_port("parity", 1))

    def spec_body(p):
        return ("A running parity tracker: parity reports the XOR of all "
                "din bits sampled since reset (even parity of the stream "
                "so far). Synchronous reset clears parity.")

    def rtl_body(p):
        op = "|" if p["uses_or"] else "^"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) parity <= 1'b{p['init']};\n"
                f"    else parity <= parity {op} din;\n"
                "end")

    def model_step(p):
        op = "|" if p["uses_or"] else "^"
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.parity = {p['init']}\n"
            "else:\n"
            f"    self.parity = self.parity {op} (inputs['din'] & 1)\n"
            "return {'parity': self.parity}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="running serial parity", difficulty=0.25, ports=ports,
        params={"init": 0, "uses_or": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.parity = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=8),
        variants=[
            variant("odd_start", "parity starts at 1", init=1),
            variant("ors_bits", "ORs instead of XORs", uses_or=True),
        ],
        reg_outputs=["parity"],
    )


def _ones_counter_task():
    task_id = "seq_ones_count"
    ports = (clock(), reset(), in_port("din", 1), out_port("count", 8))

    def spec_body(p):
        return ("Count the 1 bits seen on din since reset (wrapping "
                "modulo 256). Synchronous reset clears the count.")

    def rtl_body(p):
        bit = "!din" if p["counts_zeros"] else "din"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) count <= 8'd{p['init']};\n"
                f"    else count <= count + {{7'd0, {bit}}};\n"
                "end")

    def model_step(p):
        bit = ("(1 - (inputs['din'] & 1))" if p["counts_zeros"]
               else "(inputs['din'] & 1)")
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.count = {p['init']}\n"
            "else:\n"
            f"    self.count = (self.count + {bit}) & 0xFF\n"
            "return {'count': self.count}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="serial ones counter", difficulty=0.28, ports=ports,
        params={"init": 0, "counts_zeros": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.count = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=8),
        variants=[
            variant("counts_zeros", "counts 0 bits instead",
                    counts_zeros=True),
            variant("starts_at_one", "count starts at 1", init=1),
        ],
        reg_outputs=["count"],
    )


def _twos_complement_task():
    task_id = "seq_serial_2s_comp"
    ports = (clock(), reset(), in_port("din", 1), out_port("dout", 1))

    def spec_body(p):
        return ("A serial two's complementer (LSB first): dout replays "
                "din unchanged up to and including the first 1 bit, and "
                "inverted afterwards. Synchronous reset restarts the "
                "stream.")

    def rtl_body(p):
        if p["order_swapped"]:
            # Misconception: 'seen' updates before the output decision.
            return ("reg seen;\n"
                    "always @(posedge clk) begin\n"
                    "    if (reset) begin\n"
                    "        seen <= 1'b0;\n"
                    "        dout <= 1'b0;\n"
                    "    end else begin\n"
                    "        dout <= (seen | din) ? ~din : din;\n"
                    "        seen <= seen | din;\n"
                    "    end\n"
                    "end")
        invert = "~din" if not p["polarity_flipped"] else "din"
        plain = "din" if not p["polarity_flipped"] else "~din"
        return ("reg seen;\n"
                "always @(posedge clk) begin\n"
                "    if (reset) begin\n"
                "        seen <= 1'b0;\n"
                "        dout <= 1'b0;\n"
                "    end else begin\n"
                f"        dout <= seen ? {invert} : {plain};\n"
                "        seen <= seen | din;\n"
                "    end\n"
                "end")

    def model_step(p):
        if p["order_swapped"]:
            return (
                "din = inputs['din'] & 1\n"
                "if inputs['reset'] & 1:\n"
                "    self.seen = 0\n"
                "    self.dout = 0\n"
                "else:\n"
                "    seen_next = self.seen | din\n"
                "    self.dout = (1 - din) if seen_next else din\n"
                "    self.seen = seen_next\n"
                "return {'dout': self.dout}"
            )
        invert = "(1 - din)" if not p["polarity_flipped"] else "din"
        plain = "din" if not p["polarity_flipped"] else "(1 - din)"
        return (
            "din = inputs['din'] & 1\n"
            "if inputs['reset'] & 1:\n"
            "    self.seen = 0\n"
            "    self.dout = 0\n"
            "else:\n"
            f"    self.dout = {invert} if self.seen else {plain}\n"
            "    self.seen = self.seen | din\n"
            "return {'dout': self.dout}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="serial two's complementer", difficulty=0.58, ports=ports,
        params={"order_swapped": False, "polarity_flipped": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.seen = 0\nself.dout = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=6, cycles_per=7),
        variants=[
            variant("state_races_output",
                    "inversion starts at the first 1 itself",
                    order_swapped=True),
            variant("polarity_flipped", "inverts before the first 1",
                    polarity_flipped=True),
        ],
        reg_outputs=["dout"],
    )


def build():
    return [
        _running_parity_task(),
        _ones_counter_task(),
        _twos_complement_task(),
    ]
