"""Ring / Johnson counter and Gray-code counter tasks."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, out_port, reset, seq_scenarios,
                    variant)

FAMILY = "ring"


def _ring_task(task_id: str, width: int, johnson: bool, difficulty: float):
    ports = (clock(), reset(), out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        if johnson:
            return (f"A {width}-bit Johnson (twisted-ring) counter: each "
                    "rising edge shifts left by one with the inverted MSB "
                    "entering at bit 0. Synchronous reset clears q.")
        return (f"A {width}-bit one-hot ring counter: reset loads "
                f"{p['reset_val']:#x} and each rising edge rotates the "
                "single hot bit towards the MSB (wrapping to bit 0).")

    def rtl_body(p):
        top = width - 1
        feedback = f"~q[{top}]" if p["invert_feedback"] else f"q[{top}]"
        if p["direction"] == "right":
            fb = ("~q[0]" if p["invert_feedback"] else "q[0]")
            move = f"q <= {{{fb}, q[{top}:1]}};"
        else:
            move = f"q <= {{q[{top - 1}:0], {feedback}}};"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d{p['reset_val'] & mask};\n"
                f"    else {move}\n"
                "end")

    def model_step(p):
        top = width - 1
        if p["direction"] == "right":
            fb = ("(1 - (self.q & 1))" if p["invert_feedback"]
                  else "(self.q & 1)")
            move = (f"self.q = ({fb} << {top}) | (self.q >> 1)")
        else:
            fb = (f"(1 - ((self.q >> {top}) & 1))" if p["invert_feedback"]
                  else f"((self.q >> {top}) & 1)")
            move = (f"self.q = (((self.q << 1) | {fb}) & 0x{mask:X})")
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.q = {p['reset_val'] & mask}\n"
            "else:\n"
            f"    {move}\n"
            "return {'q': self.q}"
        )

    if johnson:
        params = {"reset_val": 0, "invert_feedback": True,
                  "direction": "left"}
        variants = [
            variant("plain_ring", "feedback not inverted",
                    invert_feedback=False),
            variant("shifts_right", "twists in the other direction",
                    direction="right"),
        ]
    else:
        params = {"reset_val": 1, "invert_feedback": False,
                  "direction": "left"}
        variants = [
            variant("rotates_right", "rotates towards bit 0",
                    direction="right"),
            variant("reset_to_msb", "reset loads the hot bit at the MSB",
                    reset_val=1 << (width - 1)),
        ]

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=(f"{width}-bit Johnson counter" if johnson
               else f"{width}-bit ring counter"),
        difficulty=difficulty, ports=ports, params=params,
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4,
            cycles_per=2 * width + 3),
        variants=variants,
        reg_outputs=["q"],
    )


def _gray_counter_task():
    task_id = "seq_gray4"
    width = 4
    mask = 0xF
    ports = (clock(), reset(), out_port("q", width))

    def spec_body(p):
        return ("A 4-bit Gray-code counter: q steps through the "
                "reflected-Gray sequence (an internal binary counter b "
                "increments each edge and q = b ^ (b >> 1)). Synchronous "
                "reset clears the counter.")

    def rtl_body(p):
        if p["outputs_binary"]:
            q_expr = "bin_count + 4'd1"
        elif p["wrong_shift"]:
            q_expr = "(bin_count + 4'd1) ^ ((bin_count + 4'd1) << 1)"
        else:
            q_expr = "(bin_count + 4'd1) ^ ((bin_count + 4'd1) >> 1)"
        return (
            "reg [3:0] bin_count;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            "        bin_count <= 4'd0;\n"
            "        q <= 4'd0;\n"
            "    end else begin\n"
            "        bin_count <= bin_count + 4'd1;\n"
            f"        q <= {q_expr};\n"
            "    end\n"
            "end")

    def model_step(p):
        if p["outputs_binary"]:
            q_expr = "nxt"
        elif p["wrong_shift"]:
            q_expr = "(nxt ^ (nxt << 1)) & 0xF"
        else:
            q_expr = "nxt ^ (nxt >> 1)"
        return (
            "if inputs['reset'] & 1:\n"
            "    self.bin_count = 0\n"
            "    self.q = 0\n"
            "else:\n"
            f"    nxt = (self.bin_count + 1) & 0x{mask:X}\n"
            "    self.bin_count = nxt\n"
            f"    self.q = {q_expr}\n"
            "return {'q': self.q}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="4-bit Gray-code counter", difficulty=0.52, ports=ports,
        params={"outputs_binary": False, "wrong_shift": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.bin_count = 0\nself.q = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4, cycles_per=20),
        variants=[
            variant("outputs_binary", "outputs the binary count",
                    outputs_binary=True),
            variant("wrong_shift_direction", "XORs with a left shift",
                    wrong_shift=True),
        ],
        reg_outputs=["q"],
    )


def build():
    return [
        _ring_task("seq_ring4", 4, False, 0.35),
        _ring_task("seq_johnson4", 4, True, 0.45),
        _ring_task("seq_johnson8", 8, True, 0.48),
        _gray_counter_task(),
    ]
