"""Multiplexer tasks (2:1 up to the paper's 6:1 demo shape)."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, in_port, out_port, scenario, variant)

FAMILY = "mux"


def _mux2_task(task_id: str, width: int, difficulty: float):
    ports = (in_port("a", width), in_port("b", width), in_port("sel", 1),
             out_port("out", width))

    def spec_body(p):
        return ("A 2-to-1 multiplexer: out = a when sel is 0, out = b when "
                "sel is 1.")

    def rtl_body(p):
        hi = ("a", "b")[p["mapping"][1]]
        lo = ("a", "b")[p["mapping"][0]]
        return f"assign out = sel ? {hi} : {lo};"

    def model_step(p):
        mask = (1 << width) - 1
        return (
            f"data = (inputs['a'] & 0x{mask:X}, inputs['b'] & 0x{mask:X})\n"
            f"mapping = {tuple(p['mapping'])}\n"
            f"return {{'out': data[mapping[inputs['sel'] & 1]]}}"
        )

    def scenarios(p, rng):
        plans = []
        for k, sel in enumerate((0, 1), start=1):
            vectors = []
            for _ in range(4):
                vectors.append({"a": rng.randrange(1 << width),
                                "b": rng.randrange(1 << width),
                                "sel": sel})
            plans.append(scenario(
                k, f"sel_{sel}",
                f"Hold sel at {sel} and apply varied data patterns.",
                vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit 2-to-1 multiplexer",
        difficulty=difficulty, ports=ports, params={"mapping": (0, 1)},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("arms_swapped", "selects a when sel=1 and b when sel=0",
                    mapping=(1, 0)),
            variant("stuck_a", "always outputs a regardless of sel",
                    mapping=(0, 0)),
            variant("stuck_b", "always outputs b regardless of sel",
                    mapping=(1, 1)),
        ],
    )


def _muxn_task(task_id: str, n_inputs: int, width: int, sel_width: int,
               difficulty: float, default: int = 0):
    """N-to-1 mux with data0..dataN-1 inputs (the paper's Fig. 3 shape)."""
    data_names = [f"data{i}" for i in range(n_inputs)]
    ports = tuple([in_port(name, width) for name in data_names]
                  + [in_port("sel", sel_width), out_port("out", width)])
    mask = (1 << width) - 1
    identity = tuple(range(n_inputs))

    def spec_body(p):
        extra = ""
        if (1 << sel_width) > n_inputs:
            extra = (f" For sel values of {n_inputs} or above, out is "
                     f"{p['default']}.")
        return (f"A {n_inputs}-to-1 multiplexer of {width}-bit buses: "
                f"out = data<k> when sel equals k.{extra}")

    def rtl_body(p):
        lines = ["always @(*) begin", "    case (sel)"]
        for k in range(n_inputs):
            src = data_names[p["mapping"][k]]
            lines.append(f"        {sel_width}'d{k}: out = {src};")
        lines.append(f"        default: out = {width}'d"
                     f"{p['default'] & mask};")
        lines.append("    endcase")
        lines.append("end")
        return "\n".join(lines)

    def model_step(p):
        loads = ", ".join(f"inputs['{n}'] & 0x{mask:X}" for n in data_names)
        return (
            f"data = ({loads})\n"
            f"mapping = {tuple(p['mapping'])}\n"
            f"sel = inputs['sel'] & {(1 << sel_width) - 1}\n"
            f"if sel < {n_inputs}:\n"
            f"    return {{'out': data[mapping[sel]]}}\n"
            f"return {{'out': {p['default'] & mask}}}"
        )

    def scenarios(p, rng):
        plans = []
        for k in range(1 << sel_width):
            vectors = []
            for _ in range(2):
                vec = {name: rng.randrange(1 << width)
                       for name in data_names}
                vec["sel"] = k
                vectors.append(vec)
            plans.append(scenario(
                k + 1, f"sel_{k}",
                f"Set sel to {k} and apply varied data patterns.", vectors))
        return tuple(plans)

    swapped = list(identity)
    swapped[1], swapped[2 % n_inputs] = swapped[2 % n_inputs], swapped[1]
    rotated = tuple((i + 1) % n_inputs for i in range(n_inputs))
    variants = [
        variant("inputs_swapped",
                "two data inputs are wired to the wrong select values",
                mapping=tuple(swapped)),
        variant("mapping_rotated",
                "every select value picks the next data input",
                mapping=rotated),
    ]
    if (1 << sel_width) > n_inputs:
        variants.append(variant(
            "default_all_ones",
            "out-of-range select drives all-ones instead of the "
            "specified default", default=mask))
    else:
        variants.append(variant(
            "stuck_first", "select is ignored for the last input",
            mapping=identity[:-1] + (0,)))

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{n_inputs}-to-1 multiplexer of {width}-bit buses",
        difficulty=difficulty, ports=ports,
        params={"mapping": identity, "default": default},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios, variants=variants,
        reg_outputs=["out"],
    )


def build():
    return [
        _mux2_task("cmb_mux2to1_1b", 1, 0.05),
        _mux2_task("cmb_mux2to1_8b", 8, 0.08),
        _mux2_task("cmb_mux2to1_32b", 32, 0.10),
        _muxn_task("cmb_mux4to1_4b", 4, 4, 2, 0.15),
        _muxn_task("cmb_mux4to1_16b", 4, 16, 2, 0.18),
        _muxn_task("cmb_mux6to1_4b", 6, 4, 3, 0.25),
    ]
