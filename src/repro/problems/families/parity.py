"""Parity and population-count tasks."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, cmb_scenarios, exhaustive_cmb_scenarios,
                    in_port, out_port, variant)

FAMILY = "parity"


def _parity_task(task_id: str, width: int, odd: bool, difficulty: float):
    ports = (in_port("in_bus", width), out_port("parity", 1))
    mask = (1 << width) - 1

    def spec_body(p):
        kind = "odd" if odd else "even"
        meaning = ("the XNOR reduction (1 when the count of set bits is "
                   "even)" if odd else
                   "the XOR reduction (1 when the count of set bits is odd)")
        return (f"parity is the {kind}-parity bit of in_bus, i.e. "
                f"{meaning}.")

    def rtl_body(p):
        expr = {"xor": "^in_bus", "xnor": "~(^in_bus)",
                "or": "|in_bus"}[p["mode"]]
        return f"assign parity = {expr};"

    def model_step(p):
        expr = {
            "xor": "bin(value).count('1') & 1",
            "xnor": "1 - (bin(value).count('1') & 1)",
            "or": "1 if value else 0",
        }[p["mode"]]
        return (
            f"value = inputs['in_bus'] & 0x{mask:X}\n"
            f"return {{'parity': {expr}}}"
        )

    golden = "xnor" if odd else "xor"
    wrong = "xor" if odd else "xnor"
    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit {'odd' if odd else 'even'} parity generator",
        difficulty=difficulty, ports=ports, params={"mode": golden},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: (
            exhaustive_cmb_scenarios(ports[:1], rng, group_size=4)
            if width <= 4 else cmb_scenarios(ports[:1], rng, 5, 4)),
        variants=[
            variant("polarity_flipped", "computes the opposite parity",
                    mode=wrong),
            variant("or_reduce", "reduces with OR instead of XOR",
                    mode="or"),
        ],
    )


def _popcount_task(task_id: str, width: int, difficulty: float):
    out_width = width.bit_length()
    ports = (in_port("in_bus", width), out_port("count", out_width))

    def spec_body(p):
        return "count reports how many bits of in_bus are 1."

    def rtl_body(p):
        start = p["start"]
        lines = ["integer i;",
                 "always @(*) begin",
                 f"    count = {out_width}'d{start};",
                 f"    for (i = 0; i < {width}; i = i + 1) begin"]
        bit = "!in_bus[i]" if p["count_zeros"] else "in_bus[i]"
        lines.append(f"        count = count + {bit};")
        lines.append("    end")
        lines.append("end")
        return "\n".join(lines)

    def model_step(p):
        source = ("(~value)" if p["count_zeros"] else "value")
        return (
            f"value = inputs['in_bus'] & 0x{(1 << width) - 1:X}\n"
            f"bits = bin({source} & 0x{(1 << width) - 1:X}).count('1')\n"
            f"return {{'count': (bits + {p['start']}) & "
            f"{(1 << out_width) - 1}}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit population count", difficulty=difficulty,
        ports=ports, params={"start": 0, "count_zeros": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: (
            exhaustive_cmb_scenarios(ports[:1], rng, group_size=4)
            if width <= 4 else cmb_scenarios(ports[:1], rng, 5, 4)),
        variants=[
            variant("counts_zeros", "counts zero bits instead", count_zeros=True),
            variant("off_by_one", "count starts from 1", start=1),
        ],
        reg_outputs=["count"],
    )


def build():
    return [
        _parity_task("cmb_parity_even8", 8, False, 0.12),
        _parity_task("cmb_parity_odd4", 4, True, 0.15),
        _popcount_task("cmb_popcount8", 8, 0.25),
        _popcount_task("cmb_popcount4", 4, 0.20),
    ]
