"""Karnaugh-map style boolean-function tasks.

Each task implements a fixed truth table over 3 or 4 named inputs; the
golden RTL renders the sum-of-products form of the table's minterms, so
behavioural variants are literally table edits (a dropped or an extra
minterm, or a globally inverted function) — the classic K-map mistakes.
"""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, exhaustive_cmb_scenarios, in_port, out_port,
                    variant)

FAMILY = "kmap"

_VAR_NAMES = ("a", "b", "c", "d")


def _sop_expr(minterms: tuple[int, ...], n_vars: int) -> str:
    if not minterms:
        return "1'b0"
    if len(minterms) == (1 << n_vars):
        return "1'b1"
    terms = []
    for minterm in minterms:
        lits = []
        for i in range(n_vars):
            bit = (minterm >> (n_vars - 1 - i)) & 1
            name = _VAR_NAMES[i]
            lits.append(name if bit else f"~{name}")
        terms.append("(" + " & ".join(lits) + ")")
    return " | ".join(terms)


def _kmap_task(task_id: str, n_vars: int, minterms: tuple[int, ...],
               difficulty: float):
    inputs = tuple(in_port(_VAR_NAMES[i]) for i in range(n_vars))
    ports = inputs + (out_port("out", 1),)
    table = 0
    for m in minterms:
        table |= 1 << m

    def spec_body(p):
        rows = ", ".join(str(m) for m in sorted(p["minterms"]))
        order = "".join(_VAR_NAMES[:n_vars])
        return (f"Implement the boolean function of {n_vars} inputs whose "
                "output is 1 exactly for the input combinations "
                f"{{{order}}} = {{{rows}}} (each combination read as an "
                f"unsigned number, {order[0]} being the MSB).")

    def rtl_body(p):
        expr = _sop_expr(tuple(sorted(p["minterms"])), n_vars)
        if p["invert"]:
            expr = f"~({expr})"
        return f"assign out = {expr};"

    def model_step(p):
        tbl = 0
        for m in p["minterms"]:
            tbl |= 1 << m
        idx_expr = " | ".join(
            f"((inputs['{_VAR_NAMES[i]}'] & 1) << {n_vars - 1 - i})"
            for i in range(n_vars))
        flip = " ^ 1" if p["invert"] else ""
        return (
            f"idx = {idx_expr}\n"
            f"return {{'out': ((0x{tbl:X} >> idx) & 1){flip}}}"
        )

    minterm_list = sorted(minterms)
    dropped = tuple(m for m in minterm_list if m != minterm_list[0])
    extra_candidates = [m for m in range(1 << n_vars)
                        if m not in minterms]
    extra = tuple(minterm_list + [extra_candidates[0]])
    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{n_vars}-variable K-map function", difficulty=difficulty,
        ports=ports, params={"minterms": tuple(minterm_list),
                             "invert": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: exhaustive_cmb_scenarios(
            inputs, rng, group_size=4),
        variants=[
            variant("minterm_dropped", "one required minterm is missing",
                    minterms=dropped),
            variant("extra_minterm", "one spurious minterm added",
                    minterms=extra),
            variant("inverted", "output polarity inverted", invert=True),
        ],
    )


def build():
    return [
        _kmap_task("cmb_kmap3_a", 3, (1, 2, 4, 7), 0.25),
        _kmap_task("cmb_kmap3_b", 3, (0, 3, 5, 6), 0.25),
        _kmap_task("cmb_kmap3_c", 3, (2, 3, 6, 7), 0.22),
        _kmap_task("cmb_kmap4_a", 4, (0, 2, 5, 7, 8, 10, 13, 15), 0.35),
        _kmap_task("cmb_kmap4_b", 4, (1, 3, 4, 6, 9, 11, 12, 14), 0.35),
        _kmap_task("cmb_kmap4_c", 4, (0, 1, 2, 3, 12, 13, 14, 15), 0.30),
    ]
