"""Accumulator tasks (plain, saturating, enabled, multiply-accumulate)."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "accumulator"


def _acc_task(task_id: str, width: int, in_width: int, has_enable: bool,
              saturating: bool, difficulty: float):
    inputs = [clock(), reset(), in_port("din", in_width)]
    if has_enable:
        inputs.append(in_port("en", 1))
    ports = tuple(inputs + [out_port("acc", width)])
    mask = (1 << width) - 1

    def spec_body(p):
        text = (f"A {width}-bit accumulator: acc += din at every rising "
                "edge")
        if has_enable:
            text += " while en is 1"
        if saturating:
            text += f"; the sum saturates at {mask} instead of wrapping"
        else:
            text += f", wrapping modulo 2^{width}"
        return text + ". Synchronous reset clears acc."

    def rtl_body(p):
        pad = width - in_width
        din_ext = f"{{{pad}'d0, din}}" if pad else "din"
        if p["subtracts"]:
            update = f"acc <= acc - {din_ext};"
        elif saturating and not p["wraps"]:
            limit = p["limit"] & mask
            update = (
                f"if (acc + {din_ext} < acc) acc <= {width}'d{limit};\n"
                f"            else if (acc + {din_ext} > {width}'d{limit}) "
                f"acc <= {width}'d{limit};\n"
                f"            else acc <= acc + {din_ext};")
        else:
            update = f"acc <= acc + {din_ext};"
        if has_enable and not p["ignore_enable"]:
            update = (f"if (en) begin\n            {update}\n"
                      "        end")
        return ("always @(posedge clk) begin\n"
                f"    if (reset) acc <= {width}'d0;\n"
                "    else begin\n"
                f"        {update}\n"
                "    end\n"
                "end")

    def model_step(p):
        if p["subtracts"]:
            move = f"self.acc = (self.acc - din) & 0x{mask:X}"
        elif saturating and not p["wraps"]:
            limit = p["limit"] & mask
            move = (f"self.acc = min(self.acc + din, {limit})")
        else:
            move = f"self.acc = (self.acc + din) & 0x{mask:X}"
        lines = [f"din = inputs['din'] & 0x{(1 << in_width) - 1:X}",
                 "if inputs['reset'] & 1:", "    self.acc = 0"]
        lines.append("elif inputs['en'] & 1:"
                     if has_enable and not p["ignore_enable"] else "else:")
        lines.append(f"    {move}")
        lines.append("return {'acc': self.acc}")
        return "\n".join(lines)

    variants = [variant("subtracts", "subtracts instead of adding",
                        subtracts=True)]
    if saturating:
        variants.append(variant("wraps", "wraps instead of saturating",
                                wraps=True))
        variants.append(variant("saturates_early",
                                "saturates one below the maximum",
                                limit=mask - 1))
    if has_enable:
        variants.append(variant("enable_ignored",
                                "accumulates even when disabled",
                                ignore_enable=True))
    if not saturating and not has_enable:
        variants.append(variant("loads_instead",
                                "loads din instead of accumulating",
                                loads=True))

    def rtl_with_load(p):
        if p.get("loads"):
            pad = width - in_width
            din_ext = f"{{{pad}'d0, din}}" if pad else "din"
            return ("always @(posedge clk) begin\n"
                    f"    if (reset) acc <= {width}'d0;\n"
                    f"    else acc <= {din_ext};\n"
                    "end")
        return rtl_body(p)

    def model_with_load(p):
        if p.get("loads"):
            return (
                "if inputs['reset'] & 1:\n"
                "    self.acc = 0\n"
                "else:\n"
                f"    self.acc = inputs['din'] & 0x{(1 << in_width) - 1:X}\n"
                "return {'acc': self.acc}"
            )
        return model_step(p)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=(f"{width}-bit "
               + ("saturating " if saturating else "")
               + "accumulator"
               + (" with enable" if has_enable else "")),
        difficulty=difficulty, ports=ports,
        params={"subtracts": False, "wraps": False, "limit": mask,
                "ignore_enable": False, "loads": False},
        spec_body=spec_body, rtl_body=rtl_with_load,
        model_init=lambda p: "self.acc = 0", model_step=model_with_load,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=8),
        variants=variants,
        reg_outputs=["acc"],
    )


def _mac_task():
    task_id = "seq_mac4"
    ports = (clock(), reset(), in_port("a", 4), in_port("b", 4),
             out_port("acc", 8))

    def spec_body(p):
        return ("A multiply-accumulate unit: acc += a * b at every rising "
                "edge, wrapping modulo 256. Synchronous reset clears acc.")

    def rtl_body(p):
        term = {"mul": "a * b", "add": "a + b"}[p["term"]]
        update = ("acc <= acc + {term};" if not p["no_accumulate"]
                  else "acc <= {term};").format(term=term)
        return ("always @(posedge clk) begin\n"
                "    if (reset) acc <= 8'd0;\n"
                f"    else {update}\n"
                "end")

    def model_step(p):
        term = {"mul": "a * b", "add": "a + b"}[p["term"]]
        move = (f"self.acc = (self.acc + {term}) & 0xFF"
                if not p["no_accumulate"] else
                f"self.acc = ({term}) & 0xFF")
        return (
            "a = inputs['a'] & 0xF\n"
            "b = inputs['b'] & 0xF\n"
            "if inputs['reset'] & 1:\n"
            "    self.acc = 0\n"
            "else:\n"
            f"    {move}\n"
            "return {'acc': self.acc}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="4x4 multiply-accumulate", difficulty=0.45, ports=ports,
        params={"term": "mul", "no_accumulate": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.acc = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=7),
        variants=[
            variant("adds_operands", "accumulates a + b", term="add"),
            variant("no_accumulation", "stores the product only",
                    no_accumulate=True),
        ],
        reg_outputs=["acc"],
    )


def build():
    return [
        _acc_task("seq_acc8", 8, 4, False, False, 0.28),
        _acc_task("seq_acc4_sat", 4, 4, False, True, 0.50),
        _acc_task("seq_acc16_en", 16, 8, True, False, 0.35),
        _mac_task(),
    ]
