"""Combinational shifter tasks (logical, arithmetic, rotate)."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, in_port, out_port, scenario, variant)

FAMILY = "shifter"

_W = 8
_MASK = 0xFF


def _shift_scenarios(p, rng):
    plans = [scenario(
        1, "shift_by_zero_and_max",
        "Shift amounts 0 and 7 with sign-bit set and clear patterns.",
        [{"in_bus": 0x81, "amt": 0}, {"in_bus": 0x81, "amt": 7},
         {"in_bus": 0x7E, "amt": 0}, {"in_bus": 0x7E, "amt": 7}])]
    for k in range(2, 6):
        vectors = [{"in_bus": rng.randrange(256), "amt": rng.randrange(8)}
                   for _ in range(4)]
        plans.append(scenario(k, f"random_shifts_{k - 1}",
                              "Randomised value/amount pairs.", vectors))
    return tuple(plans)


# mode -> (verilog expression, python expression) over in_bus/amt.
_RTL_MODES = {
    "shl": "in_bus << amt",
    "shr": "in_bus >> amt",
    "asr": ("in_bus[7] ? ((in_bus >> amt) | ~(8'hFF >> amt)) "
            ": (in_bus >> amt)"),
    "rotl": "(in_bus << amt) | (in_bus >> (4'd8 - {{1'b0, amt}}))",
    "rotr": "(in_bus >> amt) | (in_bus << (4'd8 - {{1'b0, amt}}))",
}

_PY_MODES = {
    "shl": "(value << amt) & 0xFF",
    "shr": "value >> amt",
    "asr": ("((value >> amt) | ((0xFF << (8 - amt)) & 0xFF)) & 0xFF "
            "if value & 0x80 else value >> amt"),
    "rotl": "((value << amt) | (value >> (8 - amt))) & 0xFF if amt else value",
    "rotr": "((value >> amt) | (value << (8 - amt))) & 0xFF if amt else value",
}

_TITLES = {
    "shl": "8-bit logical left shifter",
    "shr": "8-bit logical right shifter",
    "asr": "8-bit arithmetic right shifter",
    "rotl": "8-bit rotate-left unit",
    "rotr": "8-bit rotate-right unit",
}

_SPECS = {
    "shl": "out = in_bus shifted left by amt; vacated bits fill with zero.",
    "shr": "out = in_bus shifted right by amt; vacated bits fill with zero.",
    "asr": ("out = in_bus arithmetically shifted right by amt: vacated "
            "bits replicate the sign bit in_bus[7]."),
    "rotl": ("out = in_bus rotated left by amt: bits shifted out of the "
             "top re-enter at the bottom."),
    "rotr": ("out = in_bus rotated right by amt: bits shifted out of the "
             "bottom re-enter at the top."),
}


def _shifter_task(task_id: str, mode: str, difficulty: float,
                  wrong_modes: tuple[str, str]):
    ports = (in_port("in_bus", _W), in_port("amt", 3), out_port("out", _W))

    def rtl_body(p):
        expr = _RTL_MODES[p["mode"]]
        if p["mode"] in ("rotl", "rotr"):
            # Rotation needs the amt == 0 special case spelled out.
            return ("assign out = (amt == 3'd0) ? in_bus\n"
                    f"           : ({expr});")
        return f"assign out = {expr};"

    def model_step(p):
        return (
            f"value = inputs['in_bus'] & 0x{_MASK:X}\n"
            "amt = inputs['amt'] & 0x7\n"
            f"return {{'out': ({_PY_MODES[p['mode']]}) & 0xFF}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB, title=_TITLES[mode],
        difficulty=difficulty, ports=ports, params={"mode": mode},
        spec_body=lambda p: _SPECS[mode], rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=_shift_scenarios,
        variants=[
            variant(f"mode_{wrong_modes[0]}",
                    f"behaves as {_TITLES[wrong_modes[0]]}",
                    mode=wrong_modes[0]),
            variant(f"mode_{wrong_modes[1]}",
                    f"behaves as {_TITLES[wrong_modes[1]]}",
                    mode=wrong_modes[1]),
        ],
    )


def build():
    return [
        _shifter_task("cmb_shl8", "shl", 0.15, ("shr", "rotl")),
        _shifter_task("cmb_shr8", "shr", 0.15, ("shl", "asr")),
        _shifter_task("cmb_asr8", "asr", 0.40, ("shr", "rotr")),
        _shifter_task("cmb_rotl8", "rotl", 0.38, ("shl", "rotr")),
    ]
