"""Parametric truth-table tasks.

These fill the combinational population to the paper's 81 tasks with the
HDLBits "implement this truth table" problem shape.  Each task's table is
drawn from a deterministic per-task RNG, and the golden RTL alternates
between two rendering styles (case-statement lookup and sum-of-products)
so the corpus is structurally diverse.
"""

from __future__ import annotations

from ...util import derive_rng
from ..model import CMB
from ._base import (build_task, exhaustive_cmb_scenarios, in_port, out_port,
                    variant)

FAMILY = "truthtab"

_VAR_NAMES = ("x3", "x2", "x1", "x0")

# (task count, variable count) per width tier.
N_TASKS_3VAR = 9
N_TASKS_4VAR = 8


def _sop_terms(table: int, n_vars: int) -> str:
    terms = []
    names = _VAR_NAMES[-n_vars:]
    for minterm in range(1 << n_vars):
        if not (table >> minterm) & 1:
            continue
        lits = []
        for i, name in enumerate(names):
            bit = (minterm >> (n_vars - 1 - i)) & 1
            lits.append(name if bit else f"~{name}")
        terms.append("(" + " & ".join(lits) + ")")
    if not terms:
        return "1'b0"
    return " | ".join(terms)


def _truthtab_task(task_id: str, n_vars: int, table: int, style: str,
                   difficulty: float):
    names = _VAR_NAMES[-n_vars:]
    inputs = tuple(in_port(name) for name in names)
    ports = inputs + (out_port("f", 1),)
    full = (1 << (1 << n_vars)) - 1

    def spec_body(p):
        rows = []
        for minterm in range(1 << n_vars):
            bits = format(minterm, f"0{n_vars}b")
            value = (p["table"] >> minterm) & 1
            rows.append(f"  {' '.join(bits)} | {value}")
        header = " ".join(names) + " | f"
        return ("Implement the boolean function f defined by this truth "
                "table (inputs listed MSB first):\n\n"
                + header + "\n" + "\n".join(rows))

    def rtl_body(p):
        if style == "case":
            sel = "{" + ", ".join(names) + "}"
            lines = ["always @(*) begin", f"    case ({sel})"]
            for minterm in range(1 << n_vars):
                value = (p["table"] >> minterm) & 1
                lines.append(f"        {n_vars}'d{minterm}: f = 1'b{value};")
            lines.append("        default: f = 1'b0;")
            lines.extend(["    endcase", "end"])
            return "\n".join(lines)
        return f"assign f = {_sop_terms(p['table'], n_vars)};"

    def model_step(p):
        idx = " | ".join(
            f"((inputs['{name}'] & 1) << {n_vars - 1 - i})"
            for i, name in enumerate(names))
        return (
            f"idx = {idx}\n"
            f"return {{'f': (0x{p['table']:X} >> idx) & 1}}"
        )

    rng = derive_rng("truthtab-variants", task_id)
    flip_a = 1 << rng.randrange(1 << n_vars)
    flip_b = 1 << rng.randrange(1 << n_vars)
    while flip_b == flip_a:
        flip_b = 1 << rng.randrange(1 << n_vars)
    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{n_vars}-variable truth-table function",
        difficulty=difficulty, ports=ports, params={"table": table},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng_: exhaustive_cmb_scenarios(
            inputs, rng_, group_size=4),
        variants=[
            variant("entry_flipped_a", "one truth-table row is wrong",
                    table=table ^ flip_a),
            variant("entry_flipped_b", "a different row is wrong",
                    table=table ^ flip_b),
            variant("inverted", "the whole function is inverted",
                    table=table ^ full),
        ],
        reg_outputs=["f"] if style == "case" else (),
    )


def build():
    tasks = []
    for k in range(N_TASKS_3VAR):
        rng = derive_rng("truthtab", 3, k)
        # Avoid constant and near-constant tables.
        table = rng.randrange(1, (1 << 8) - 1)
        while bin(table).count("1") in (0, 1, 7, 8):
            table = rng.randrange(1, (1 << 8) - 1)
        style = "case" if k % 2 == 0 else "sop"
        tasks.append(_truthtab_task(
            f"cmb_ttab3_{k:02d}", 3, table, style, 0.18 + 0.01 * (k % 5)))
    for k in range(N_TASKS_4VAR):
        rng = derive_rng("truthtab", 4, k)
        table = rng.randrange(1, (1 << 16) - 1)
        while not 3 <= bin(table).count("1") <= 13:
            table = rng.randrange(1, (1 << 16) - 1)
        style = "case" if k % 2 == 0 else "sop"
        tasks.append(_truthtab_task(
            f"cmb_ttab4_{k:02d}", 4, table, style, 0.26 + 0.015 * (k % 5)))
    return tasks
