"""Pipeline-delay and history-comparison tasks."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "history"


def _delay_task(task_id: str, width: int, depth: int, difficulty: float):
    ports = (clock(), reset(), in_port("d", width), out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {p['depth']}-stage pipeline delay: q reproduces d "
                f"delayed by {p['depth']} rising clock edges. Synchronous "
                "reset clears every stage.")

    def rtl_body(p):
        depth_now = p["depth"]
        lines = []
        for i in range(1, depth_now):
            lines.append(f"reg [{width - 1}:0] stage{i};")
        lines.append("always @(posedge clk) begin")
        lines.append("    if (reset) begin")
        for i in range(1, depth_now):
            lines.append(f"        stage{i} <= {width}'d0;")
        lines.append(f"        q <= {width}'d0;")
        lines.append("    end else begin")
        prev = "d"
        for i in range(1, depth_now):
            lines.append(f"        stage{i} <= {prev};")
            prev = f"stage{i}"
        lines.append(f"        q <= {prev};")
        lines.append("    end")
        lines.append("end")
        return "\n".join(lines)

    def model_step(p):
        depth_now = p["depth"]
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.stages = [0] * {depth_now}\n"
            "else:\n"
            f"    self.stages = [inputs['d'] & 0x{mask:X}] + "
            "self.stages[:-1]\n"
            "return {'q': self.stages[-1]}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{depth}-cycle delay line ({width}-bit)",
        difficulty=difficulty, ports=ports, params={"depth": depth},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: f"self.stages = [0] * {p['depth']}",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5,
            cycles_per=depth + 5),
        variants=[
            variant("one_stage_short", f"delays {depth - 1} cycles only",
                    depth=depth - 1),
            variant("one_stage_extra", f"delays {depth + 1} cycles",
                    depth=depth + 1),
        ],
        reg_outputs=["q"],
    )


def _prev_compare_task():
    task_id = "seq_prev_eq"
    ports = (clock(), reset(), in_port("d", 4), out_port("same", 1))

    def spec_body(p):
        return ("same is 1 when the value sampled at this rising edge "
                "equals the value sampled at the previous one; the first "
                "sample after reset compares against 0.")

    def rtl_body(p):
        op = "!=" if p["inverted"] else "=="
        return (
            "reg [3:0] prev;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            "        prev <= 4'd0;\n"
            "        same <= 1'b0;\n"
            "    end else begin\n"
            f"        same <= (d {op} prev);\n"
            "        prev <= d;\n"
            "    end\n"
            "end")

    def model_step(p):
        op = "!=" if p["inverted"] else "=="
        return (
            "d = inputs['d'] & 0xF\n"
            "if inputs['reset'] & 1:\n"
            "    self.prev = 0\n"
            "    self.same = 0\n"
            "else:\n"
            f"    self.same = 1 if d {op} self.prev else 0\n"
            "    self.prev = d\n"
            "return {'same': self.same}"
        )

    def scenarios(p, rng):
        base = seq_scenarios(ports, rng, reset_name="reset",
                             n_scenarios=4, cycles_per=7)
        # Force repeated values so the equal case is exercised.
        forced = []
        for scn in base:
            vectors = [dict(v) for v in scn.vectors]
            for i in range(3, len(vectors)):
                if i % 2 == 1:
                    vectors[i]["d"] = vectors[i - 1]["d"]
            forced.append(type(scn)(scn.index, scn.name, scn.description,
                                    tuple(vectors)))
        return tuple(forced)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title="previous-value equality tracker", difficulty=0.38,
        ports=ports, params={"inverted": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.prev = 0\nself.same = 0",
        model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("inverted", "reports inequality", inverted=True),
        ],
        reg_outputs=["same"],
    )


def build():
    return [
        _delay_task("seq_delay2_4b", 4, 2, 0.30),
        _delay_task("seq_delay3_8b", 8, 3, 0.35),
        _prev_compare_task(),
    ]
