"""Task families of the benchmark dataset.

Every module here exposes ``build() -> list[TaskSpec]``; the dataset
registry in :mod:`repro.problems.dataset` assembles them and enforces the
paper's population: 156 tasks = 81 combinational + 75 sequential.
"""

from . import (accumulator, adder, alu, comparator, counter, decoder, demux,
               dff, edge, encoder, fsm_detect, fsm_misc, gates, history,
               kmap, lfsr, minmax, mux, parity, regfile, register, ring,
               serial, shift_register, shifter, timer, toggle, truthtab,
               vectorops, zero_detect)

ALL_FAMILY_MODULES = (
    gates, mux, decoder, encoder, adder, comparator, shifter, parity, kmap,
    alu, minmax, demux, zero_detect, truthtab, vectorops,
    dff, register, counter, shift_register, lfsr, fsm_detect, fsm_misc,
    edge, toggle, accumulator, timer, serial, history, ring, regfile,
)

__all__ = ["ALL_FAMILY_MODULES"]
