"""Demultiplexer tasks."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, exhaustive_cmb_scenarios, in_port, out_port,
                    variant)

FAMILY = "demux"


def _demux_task(task_id: str, sel_width: int, has_enable: bool,
                difficulty: float):
    out_width = 1 << sel_width
    inputs = [in_port("d", 1), in_port("sel", sel_width)]
    if has_enable:
        inputs.append(in_port("en", 1))
    ports = tuple(inputs + [out_port("out", out_width)])
    mask = (1 << out_width) - 1

    def spec_body(p):
        text = (f"A 1-to-{out_width} demultiplexer: output bit out[sel] "
                "follows d while every other output bit is 0.")
        if has_enable:
            text += " When en is 0, all outputs are 0."
        return text

    def rtl_body(p):
        if p["broadcast"]:
            value = f"{{{out_width}{{d}}}}"
        elif p["order"] == "msb":
            value = f"d ? ({out_width}'d{1 << (out_width - 1)} >> sel) " \
                    f": {out_width}'d0"
        else:
            value = f"d ? ({out_width}'d1 << sel) : {out_width}'d0"
        if has_enable and not p["ignore_enable"]:
            return f"assign out = en ? ({value}) : {out_width}'d0;"
        return f"assign out = {value};"

    def model_step(p):
        lines = [f"sel = inputs['sel'] & {(1 << sel_width) - 1}",
                 "d = inputs['d'] & 1"]
        if p["broadcast"]:
            lines.append(f"out = (0x{mask:X} if d else 0)")
        elif p["order"] == "msb":
            lines.append(
                f"out = ((0x{1 << (out_width - 1):X} >> sel) if d else 0)")
        else:
            lines.append("out = ((1 << sel) if d else 0)")
        if has_enable and not p["ignore_enable"]:
            lines.append("if not (inputs['en'] & 1):")
            lines.append("    out = 0")
        lines.append(f"return {{'out': out & 0x{mask:X}}}")
        return "\n".join(lines)

    variants = [
        variant("reversed_order", "outputs indexed from the MSB downwards",
                order="msb"),
        variant("broadcast", "drives d onto every output", broadcast=True),
    ]
    if has_enable:
        variants.append(variant("enable_ignored", "ignores the enable",
                                ignore_enable=True))

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=(f"1-to-{out_width} demultiplexer"
               + (" with enable" if has_enable else "")),
        difficulty=difficulty, ports=ports,
        params={"order": "lsb", "broadcast": False, "ignore_enable": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: exhaustive_cmb_scenarios(
            ports[:-1], rng, group_size=2 if has_enable else 2),
        variants=variants,
    )


def build():
    return [
        _demux_task("cmb_demux1to4", 2, False, 0.12),
        _demux_task("cmb_demux1to8_en", 3, True, 0.22),
    ]
