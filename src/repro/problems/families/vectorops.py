"""Vector restructuring tasks (split, swap, reverse, extend, multiply)."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, cmb_scenarios, exhaustive_cmb_scenarios,
                    in_port, out_port, variant)

FAMILY = "vectorops"


def _split_task():
    task_id = "cmb_split16"
    ports = (in_port("in_bus", 16), out_port("hi", 8), out_port("lo", 8))

    def spec_body(p):
        return ("Split a 16-bit word into bytes: hi = in_bus[15:8], "
                "lo = in_bus[7:0].")

    def rtl_body(p):
        if p["swapped"]:
            return ("assign hi = in_bus[7:0];\n"
                    "assign lo = in_bus[15:8];")
        return ("assign hi = in_bus[15:8];\n"
                "assign lo = in_bus[7:0];")

    def model_step(p):
        hi_expr = "value & 0xFF" if p["swapped"] else "(value >> 8) & 0xFF"
        lo_expr = "(value >> 8) & 0xFF" if p["swapped"] else "value & 0xFF"
        return (
            "value = inputs['in_bus'] & 0xFFFF\n"
            f"return {{'hi': {hi_expr}, 'lo': {lo_expr}}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="16-bit word to byte splitter", difficulty=0.06, ports=ports,
        params={"swapped": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: cmb_scenarios(ports[:1], rng, 4, 4),
        variants=[
            variant("halves_swapped", "hi and lo outputs exchanged",
                    swapped=True),
        ],
    )


def _nibble_swap_task():
    task_id = "cmb_nibswap8"
    ports = (in_port("in_bus", 8), out_port("out", 8))

    def spec_body(p):
        return "Swap the two nibbles: out = {in_bus[3:0], in_bus[7:4]}."

    def rtl_body(p):
        if p["mode"] == "identity":
            return "assign out = in_bus;"
        if p["mode"] == "reverse":
            bits = ", ".join(f"in_bus[{i}]" for i in range(8))
            return f"assign out = {{{bits}}};"
        return "assign out = {in_bus[3:0], in_bus[7:4]};"

    def model_step(p):
        expr = {
            "swap": "((value & 0xF) << 4) | (value >> 4)",
            "identity": "value",
            "reverse": "int(format(value, '08b')[::-1], 2)",
        }[p["mode"]]
        return (
            "value = inputs['in_bus'] & 0xFF\n"
            f"return {{'out': ({expr}) & 0xFF}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="8-bit nibble swapper", difficulty=0.10, ports=ports,
        params={"mode": "swap"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: cmb_scenarios(ports[:1], rng, 4, 4),
        variants=[
            variant("no_swap", "passes the input through", mode="identity"),
            variant("bit_reversed", "reverses all bits instead",
                    mode="reverse"),
        ],
    )


def _reverse_task():
    task_id = "cmb_reverse8"
    ports = (in_port("in_bus", 8), out_port("out", 8))

    def spec_body(p):
        return ("Reverse the bit order: out[i] = in_bus[7-i] for each of "
                "the 8 bits.")

    def rtl_body(p):
        order = range(8) if not p["off_by_one"] else (
            list(range(1, 8)) + [0])
        if p["mode"] == "nibble":
            return "assign out = {in_bus[3:0], in_bus[7:4]};"
        bits = ", ".join(f"in_bus[{i}]" for i in order)
        return f"assign out = {{{bits}}};"

    def model_step(p):
        if p["mode"] == "nibble":
            return (
                "value = inputs['in_bus'] & 0xFF\n"
                "return {'out': (((value & 0xF) << 4) | (value >> 4)) "
                "& 0xFF}"
            )
        if p["off_by_one"]:
            return (
                "value = inputs['in_bus'] & 0xFF\n"
                "rev = int(format(value, '08b')[::-1], 2)\n"
                "rot = ((rev >> 7) | (rev << 1)) & 0xFF\n"
                "return {'out': rot}"
            )
        return (
            "value = inputs['in_bus'] & 0xFF\n"
            "return {'out': int(format(value, '08b')[::-1], 2)}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="8-bit bit-order reverser", difficulty=0.20, ports=ports,
        params={"mode": "reverse", "off_by_one": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: cmb_scenarios(ports[:1], rng, 4, 4),
        variants=[
            variant("nibble_swap_instead", "swaps nibbles instead",
                    mode="nibble"),
            variant("rotated_by_one", "reversal misaligned by one bit",
                    off_by_one=True),
        ],
    )


def _signext_task():
    task_id = "cmb_signext4to8"
    ports = (in_port("in_bus", 4), out_port("out", 8))

    def spec_body(p):
        return ("Sign-extend the 4-bit two's-complement input to 8 bits: "
                "out = {{4{in_bus[3]}}, in_bus}.")

    def rtl_body(p):
        mode = p["mode"]
        if mode == "zero":
            return "assign out = {4'b0000, in_bus};"
        if mode == "wrong_bit":
            return "assign out = {{4{in_bus[0]}}, in_bus};"
        return "assign out = {{4{in_bus[3]}}, in_bus};"

    def model_step(p):
        expr = {
            "sign": "(0xF0 if value & 0x8 else 0) | value",
            "zero": "value",
            "wrong_bit": "(0xF0 if value & 0x1 else 0) | value",
        }[p["mode"]]
        return (
            "value = inputs['in_bus'] & 0xF\n"
            f"return {{'out': ({expr}) & 0xFF}}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title="4-to-8 bit sign extender", difficulty=0.16, ports=ports,
        params={"mode": "sign"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: exhaustive_cmb_scenarios(
            ports[:1], rng, group_size=4),
        variants=[
            variant("zero_extend", "zero-extends instead", mode="zero"),
            variant("replicates_lsb", "replicates bit 0 instead of bit 3",
                    mode="wrong_bit"),
        ],
    )


def _mul_task(task_id: str, square: bool, difficulty: float):
    if square:
        ports = (in_port("a", 4), out_port("prod", 8))
    else:
        ports = (in_port("a", 4), in_port("b", 4), out_port("prod", 8))

    def spec_body(p):
        if square:
            return "prod is the 8-bit square of the 4-bit input: a * a."
        return "prod is the full 8-bit product of the two 4-bit inputs."

    def rtl_body(p):
        rhs = "a * a" if square else "a * b"
        if p["mode"] == "add":
            rhs = "a + a" if square else "a + b"
        if p["mode"] == "truncated":
            return ("wire [7:0] full_prod;\n"
                    f"assign full_prod = {rhs};\n"
                    f"assign prod = {{4'b0000, full_prod[3:0]}};")
        return f"assign prod = {rhs};"

    def model_step(p):
        rhs = ("a * a" if square else "a * b")
        if p["mode"] == "add":
            rhs = "a + a" if square else "a + b"
        mask = "0xF" if p["mode"] == "truncated" else "0xFF"
        lines = ["a = inputs['a'] & 0xF"]
        if not square:
            lines.append("b = inputs['b'] & 0xF")
        lines.append(f"return {{'prod': ({rhs}) & {mask}}}")
        return "\n".join(lines)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=("4-bit squarer" if square else "4x4 multiplier"),
        difficulty=difficulty, ports=ports, params={"mode": "mul"},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: (
            exhaustive_cmb_scenarios(ports[:1], rng, group_size=4)
            if square else cmb_scenarios(ports[:2], rng, 5, 4)),
        variants=[
            variant("adds_instead", "adds instead of multiplying",
                    mode="add"),
            variant("truncated", "keeps only the low 4 product bits",
                    mode="truncated"),
        ],
    )


def _gray_task(task_id: str, to_gray: bool, width: int, difficulty: float):
    ports = (in_port("in_bus", width), out_port("out", width))
    mask = (1 << width) - 1

    def spec_body(p):
        if to_gray:
            return ("Convert binary to Gray code: "
                    "out = in_bus ^ (in_bus >> 1).")
        return ("Convert Gray code to binary: out[i] is the XOR of "
                "in_bus bits i and above.")

    def rtl_body(p):
        if to_gray:
            shift = "<<" if p["wrong_dir"] else ">>"
            return f"assign out = in_bus ^ (in_bus {shift} 1);"
        if p["wrong_dir"]:
            return "assign out = in_bus ^ (in_bus >> 1);"
        lines = [f"assign out[{width - 1}] = in_bus[{width - 1}];"]
        for i in range(width - 2, -1, -1):
            lines.append(
                f"assign out[{i}] = out[{i + 1}] ^ in_bus[{i}];")
        return "\n".join(lines)

    def model_step(p):
        if to_gray:
            op = "<<" if p["wrong_dir"] else ">>"
            return (
                f"value = inputs['in_bus'] & 0x{mask:X}\n"
                f"return {{'out': (value ^ (value {op} 1)) & 0x{mask:X}}}"
            )
        if p["wrong_dir"]:
            return (
                f"value = inputs['in_bus'] & 0x{mask:X}\n"
                f"return {{'out': (value ^ (value >> 1)) & 0x{mask:X}}}"
            )
        return (
            f"value = inputs['in_bus'] & 0x{mask:X}\n"
            "out = 0\n"
            "acc = 0\n"
            f"for i in range({width - 1}, -1, -1):\n"
            "    acc ^= (value >> i) & 1\n"
            "    out |= acc << i\n"
            "return {'out': out}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=("binary-to-Gray converter" if to_gray
               else "Gray-to-binary converter"),
        difficulty=difficulty, ports=ports, params={"wrong_dir": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: (
            exhaustive_cmb_scenarios(ports[:1], rng, group_size=4)
            if width <= 4 else cmb_scenarios(ports[:1], rng, 4, 4)),
        variants=[
            variant("wrong_direction",
                    ("shifts the wrong way" if to_gray
                     else "applies the inverse transform"),
                    wrong_dir=True),
        ],
    )


def build():
    return [
        _split_task(),
        _nibble_swap_task(),
        _reverse_task(),
        _signext_task(),
        _mul_task("cmb_mul4x4", False, 0.22),
        _mul_task("cmb_square4", True, 0.18),
        _gray_task("cmb_bin2gray8", True, 8, 0.24),
        _gray_task("cmb_gray2bin4", False, 4, 0.42),
    ]
