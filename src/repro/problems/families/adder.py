"""Adder / subtractor tasks."""

from __future__ import annotations

from ..model import CMB
from ._base import (build_task, exhaustive_cmb_scenarios, in_port,
                    out_port, scenario, variant)

FAMILY = "adder"


def _bit_adder_task(task_id: str, has_cin: bool, difficulty: float):
    inputs = [in_port("a", 1), in_port("b", 1)]
    if has_cin:
        inputs.append(in_port("cin", 1))
    ports = tuple(inputs + [out_port("sum_o", 1), out_port("cout", 1)])

    def spec_body(p):
        kind = "full" if has_cin else "half"
        cin_text = " plus the carry input cin" if has_cin else ""
        return (f"A single-bit {kind} adder: {{cout, sum_o}} is the 2-bit "
                f"sum of a and b{cin_text}.")

    def rtl_body(p):
        terms = "a + b + cin" if has_cin else "a + b"
        if p["sum_mode"] == "or":
            sum_expr = "a | b"
            cout_expr = "a & b"
            return (f"assign sum_o = {sum_expr};\n"
                    f"assign cout = {cout_expr};")
        if p["cout_mode"] == "xor":
            base = "a ^ b ^ cin" if has_cin else "a ^ b"
            return (f"assign sum_o = {base};\n"
                    f"assign cout = {base};")
        if has_cin and p["ignore_cin"]:
            terms = "a + b"
        return f"assign {{cout, sum_o}} = {terms};"

    def model_step(p):
        terms = ["(inputs['a'] & 1)", "(inputs['b'] & 1)"]
        if has_cin and not p["ignore_cin"]:
            terms.append("(inputs['cin'] & 1)")
        if p["sum_mode"] == "or":
            return ("a = inputs['a'] & 1\n"
                    "b = inputs['b'] & 1\n"
                    "return {'sum_o': a | b, 'cout': a & b}")
        if p["cout_mode"] == "xor":
            total = " ^ ".join(terms)
            return (f"bit = ({total}) & 1\n"
                    "return {'sum_o': bit, 'cout': bit}")
        total = " + ".join(terms)
        return (f"total = {total}\n"
                "return {'sum_o': total & 1, 'cout': (total >> 1) & 1}")

    variants = [
        variant("sum_is_or", "computes OR instead of the sum bit",
                sum_mode="or"),
        variant("cout_is_xor", "carry-out mirrors the sum bit",
                cout_mode="xor"),
    ]
    if has_cin:
        variants.append(variant("ignores_cin", "ignores the carry input",
                                ignore_cin=True))

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=("full adder" if has_cin else "half adder"),
        difficulty=difficulty, ports=ports,
        params={"sum_mode": "add", "cout_mode": "add", "ignore_cin": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=lambda p, rng: exhaustive_cmb_scenarios(
            ports[:len(inputs)], rng, group_size=2),
        variants=variants,
    )


def _wide_adder_task(task_id: str, width: int, has_cout: bool,
                     has_cin: bool, difficulty: float):
    inputs = [in_port("a", width), in_port("b", width)]
    if has_cin:
        inputs.append(in_port("cin", 1))
    outputs = [out_port("sum_o", width)]
    if has_cout:
        outputs.append(out_port("cout", 1))
    ports = tuple(inputs + outputs)
    mask = (1 << width) - 1

    def spec_body(p):
        text = f"A {width}-bit adder: sum_o = a + b"
        if has_cin:
            text += " + cin"
        text += f" (modulo 2^{width})"
        if has_cout:
            text += "; cout is the carry out of the most-significant bit"
        return text + "."

    def rtl_body(p):
        terms = "a + b"
        if has_cin and not p["ignore_cin"]:
            terms += " + cin"
        if p["extra"]:
            terms += f" + {width}'d{p['extra']}"
        if not has_cout:
            return f"assign sum_o = {terms};"
        if p["cout_mode"] == "zero":
            return (f"assign sum_o = {terms};\n"
                    "assign cout = 1'b0;")
        return f"assign {{cout, sum_o}} = {terms};"

    def model_step(p):
        terms = [f"(inputs['a'] & 0x{mask:X})", f"(inputs['b'] & 0x{mask:X})"]
        if has_cin and not p["ignore_cin"]:
            terms.append("(inputs['cin'] & 1)")
        if p["extra"]:
            terms.append(str(p["extra"]))
        lines = [f"total = {' + '.join(terms)}"]
        result = [f"'sum_o': total & 0x{mask:X}"]
        if has_cout:
            if p["cout_mode"] == "zero":
                result.append("'cout': 0")
            else:
                result.append(f"'cout': (total >> {width}) & 1")
        lines.append(f"return {{{', '.join(result)}}}")
        return "\n".join(lines)

    def scenarios(p, rng):
        plans = [scenario(
            1, "carry_corners",
            "All-zero, all-one and carry-chain corner patterns.",
            [dict({"a": 0, "b": 0}, **({"cin": 0} if has_cin else {})),
             dict({"a": mask, "b": 1}, **({"cin": 0} if has_cin else {})),
             dict({"a": mask, "b": mask}, **({"cin": 1} if has_cin
                                             else {}))])]
        for k in range(2, 6):
            vectors = []
            for _ in range(4):
                vec = {"a": rng.randrange(1 << width),
                       "b": rng.randrange(1 << width)}
                if has_cin:
                    vec["cin"] = rng.randrange(2)
                vectors.append(vec)
            plans.append(scenario(k, f"random_{k - 1}",
                                  "Randomised operand patterns.", vectors))
        return tuple(plans)

    variants = [variant("off_by_one", "adds an extra 1", extra=1)]
    if has_cout:
        variants.append(variant("cout_stuck_zero",
                                "carry out is stuck at zero",
                                cout_mode="zero"))
    if has_cin:
        variants.append(variant("ignores_cin", "ignores the carry input",
                                ignore_cin=True))
    if not has_cout and not has_cin:
        variants.append(variant("off_by_two", "adds an extra 2", extra=2))

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit adder", difficulty=difficulty, ports=ports,
        params={"extra": 0, "cout_mode": "carry", "ignore_cin": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios, variants=variants,
    )


def _addsub_task(task_id: str, width: int, difficulty: float):
    ports = (in_port("a", width), in_port("b", width), in_port("sub", 1),
             out_port("out", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {width}-bit adder-subtractor: out = a + b when sub is "
                "0 and out = a - b when sub is 1 (two's complement, "
                f"modulo 2^{width}).")

    def rtl_body(p):
        minuend = "a - b" if p["sub_order"] == "ab" else "b - a"
        add = "a + b"
        if p["invert_sel"]:
            return f"assign out = sub ? ({add}) : ({minuend});"
        return f"assign out = sub ? ({minuend}) : ({add});"

    def model_step(p):
        minuend = "a - b" if p["sub_order"] == "ab" else "b - a"
        first, second = (("a + b", minuend) if not p["invert_sel"]
                         else (minuend, "a + b"))
        return (
            f"a = inputs['a'] & 0x{mask:X}\n"
            f"b = inputs['b'] & 0x{mask:X}\n"
            "if inputs['sub'] & 1:\n"
            f"    return {{'out': ({second}) & 0x{mask:X}}}\n"
            f"return {{'out': ({first}) & 0x{mask:X}}}"
        )

    def scenarios(p, rng):
        plans = []
        for k, sub in enumerate((0, 1), start=1):
            vectors = [{"a": rng.randrange(1 << width),
                        "b": rng.randrange(1 << width), "sub": sub}
                       for _ in range(4)]
            plans.append(scenario(
                k, f"sub_{sub}",
                f"Hold sub at {sub} with varied operands.", vectors))
        plans.append(scenario(
            3, "wraparound",
            "Patterns that overflow and underflow.",
            [{"a": mask, "b": mask, "sub": 0},
             {"a": 0, "b": 1, "sub": 1},
             {"a": mask, "b": 1, "sub": 0}]))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=CMB,
        title=f"{width}-bit adder-subtractor", difficulty=difficulty,
        ports=ports, params={"sub_order": "ab", "invert_sel": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("operands_swapped", "subtract computes b - a",
                    sub_order="ba"),
            variant("select_inverted", "sub=0 subtracts, sub=1 adds",
                    invert_sel=True),
        ],
    )


def build():
    return [
        _bit_adder_task("cmb_half_adder", False, 0.06),
        _bit_adder_task("cmb_full_adder", True, 0.10),
        _wide_adder_task("cmb_add4_cout", 4, True, False, 0.14),
        _wide_adder_task("cmb_add8_cin", 8, True, True, 0.18),
        _wide_adder_task("cmb_add16", 16, False, False, 0.12),
        _addsub_task("cmb_addsub8", 8, 0.24),
    ]
