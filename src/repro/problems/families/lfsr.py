"""Linear-feedback shift-register tasks (Galois form)."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, out_port, reset, seq_scenarios,
                    variant)

FAMILY = "lfsr"


def _lfsr_task(task_id: str, width: int, taps: int, difficulty: float):
    ports = (clock(), reset(), out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {width}-bit Galois LFSR. At each rising edge the "
                "register shifts right by one; when the bit shifted out "
                f"(q[0]) is 1, the tap mask 0x{p['taps']:X} is XORed into "
                "the shifted value. Synchronous reset loads "
                f"{p['reset_val']}.")

    def rtl_body(p):
        return (
            "always @(posedge clk) begin\n"
            f"    if (reset) q <= {width}'d{p['reset_val'] & mask};\n"
            f"    else q <= (q >> 1) ^ (q[0] ? {width}'d{p['taps'] & mask} "
            f": {width}'d0);\n"
            "end")

    def model_step(p):
        return (
            "if inputs['reset'] & 1:\n"
            f"    self.q = {p['reset_val'] & mask}\n"
            "else:\n"
            "    lsb = self.q & 1\n"
            "    self.q >>= 1\n"
            "    if lsb:\n"
            f"        self.q ^= 0x{p['taps'] & mask:X}\n"
            "return {'q': self.q}"
        )

    wrong_taps = (taps ^ (1 << (width // 2))) & mask
    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit Galois LFSR", difficulty=difficulty,
        ports=ports, params={"taps": taps, "reset_val": 1},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=4,
            cycles_per=2 * width + 2),
        variants=[
            variant("wrong_taps", "one feedback tap misplaced",
                    taps=wrong_taps),
            variant("reset_to_zero",
                    "reset loads 0, locking the register up",
                    reset_val=0),
        ],
        reg_outputs=["q"],
    )


def build():
    return [
        # x^5 + x^3 + 1 -> taps at bits 4 and 2 of the shifted value.
        _lfsr_task("seq_lfsr5", 5, 0b10100, 0.45),
        # x^8 + x^6 + x^5 + x^4 + 1.
        _lfsr_task("seq_lfsr8", 8, 0b10111000, 0.50),
        _lfsr_task("seq_lfsr16", 16, 0b1011010000000000, 0.58),
    ]
