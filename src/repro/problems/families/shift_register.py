"""Shift-register tasks (SIPO, rotate, arithmetic shift — the paper's
``shift18`` demo is an arithmetic shifter of this family's shape)."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "shift_register"


def _sipo_task(task_id: str, width: int, has_enable: bool,
               difficulty: float):
    inputs = [clock(), reset(), in_port("din", 1)]
    if has_enable:
        inputs.append(in_port("en", 1))
    ports = tuple(inputs + [out_port("q", width)])
    mask = (1 << width) - 1

    def spec_body(p):
        text = (f"A {width}-bit serial-in parallel-out shift register: at "
                "each rising edge the register shifts left by one and din "
                "enters at bit 0. Synchronous reset clears the register.")
        if has_enable:
            text += " Shifting only happens while en is 1."
        return text

    def rtl_body(p):
        if p["direction"] == "right":
            shift = f"q <= {{din, q[{width - 1}:1]}};"
        else:
            shift = f"q <= {{q[{width - 2}:0], din}};"
        if has_enable and not p["ignore_enable"]:
            shift = f"if (en) {shift}"
        return ("always @(posedge clk) begin\n"
                f"    if (reset) q <= {width}'d0;\n"
                f"    else {shift}\n"
                "end")

    def model_step(p):
        if p["direction"] == "right":
            move = (f"self.q = ((inputs['din'] & 1) << {width - 1}) | "
                    "(self.q >> 1)")
        else:
            move = ("self.q = ((self.q << 1) | (inputs['din'] & 1)) "
                    f"& 0x{mask:X}")
        lines = ["if inputs['reset'] & 1:", "    self.q = 0"]
        lines.append("elif inputs['en'] & 1:"
                     if has_enable and not p["ignore_enable"] else "else:")
        lines.append(f"    {move}")
        lines.append("return {'q': self.q}")
        return "\n".join(lines)

    variants = [
        variant("shifts_right", "shifts right with din entering at the top",
                direction="right"),
    ]
    if has_enable:
        variants.append(variant("enable_ignored", "shifts every cycle",
                                ignore_enable=True))
    else:
        variants.append(variant("reset_ignored_q",
                                "reset loads all-ones",
                                reset_broken=True))
    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit SIPO shift register"
              + (" with enable" if has_enable else ""),
        difficulty=difficulty, ports=ports,
        params={"direction": "left", "ignore_enable": False,
                "reset_broken": False},
        spec_body=spec_body,
        rtl_body=lambda p: (rtl_body(p) if not p.get("reset_broken") else
                            rtl_body(p).replace(
                                f"q <= {width}'d0;",
                                f"q <= {width}'d{mask};")),
        model_init=lambda p: "self.q = 0",
        model_step=lambda p: (model_step(p) if not p.get("reset_broken")
                              else model_step(p).replace(
                                  "    self.q = 0",
                                  f"    self.q = {mask}", 1)),
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5,
            cycles_per=width + 3),
        variants=variants,
        reg_outputs=["q"],
    )


def _rotate_task(task_id: str, width: int, difficulty: float):
    ports = (clock(), in_port("load", 1), in_port("d", width),
             out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {width}-bit rotating register: when load is 1 the "
                "register takes d; otherwise it rotates left by one bit "
                "each rising edge (the MSB wraps to bit 0).")

    def rtl_body(p):
        if p["direction"] == "right":
            rot = f"q <= {{q[0], q[{width - 1}:1]}};"
        else:
            rot = f"q <= {{q[{width - 2}:0], q[{width - 1}]}};"
        if p["ignore_load"]:
            return ("always @(posedge clk) begin\n"
                    f"    {rot}\n"
                    "end")
        return ("always @(posedge clk) begin\n"
                "    if (load) q <= d;\n"
                f"    else {rot}\n"
                "end")

    def model_step(p):
        if p["direction"] == "right":
            rot = (f"self.q = ((self.q & 1) << {width - 1}) | "
                   "(self.q >> 1)")
        else:
            rot = (f"self.q = ((self.q << 1) | (self.q >> {width - 1})) "
                   f"& 0x{mask:X}")
        if p["ignore_load"]:
            return f"{rot}\nreturn {{'q': self.q}}"
        return (
            "if inputs['load'] & 1:\n"
            f"    self.q = inputs['d'] & 0x{mask:X}\n"
            "else:\n"
            f"    {rot}\n"
            "return {'q': self.q}"
        )

    def scenarios(p, rng):
        # Load-heavy plan: every scenario starts by loading a known value.
        plans = seq_scenarios(ports, rng, reset_name=None, n_scenarios=5,
                              cycles_per=width + 2, reset_cycles=0)
        forced = []
        for scn in plans:
            vectors = [dict(v) for v in scn.vectors]
            vectors[0]["load"] = 1
            vectors[0]["d"] = rng.randrange(1 << width)
            forced.append(type(scn)(scn.index, scn.name, scn.description,
                                    tuple(vectors)))
        return tuple(forced)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit rotate-left register", difficulty=difficulty,
        ports=ports,
        params={"direction": "left", "ignore_load": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("rotates_right", "rotates right instead",
                    direction="right"),
            variant("load_ignored", "never loads", ignore_load=True),
        ],
        reg_outputs=["q"],
    )


def _arith_shift_task(task_id: str, width: int, difficulty: float):
    """Arithmetic shift register — the shape of the paper's Fig. 5 demo."""
    ports = (clock(), in_port("load", 1), in_port("ena", 1),
             in_port("amount", 2), in_port("data", width),
             out_port("q", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {width}-bit arithmetic shift register. load loads "
                "data. Otherwise when ena is 1 the register shifts by "
                "amount: 0 = left by 1, 1 = left by 4, 2 = right by 1, "
                "3 = right by 4. Right shifts are arithmetic (the sign "
                "bit replicates).")

    def rtl_body(p):
        sign_fill_1 = (f"{{q[{width - 1}], q[{width - 1}:1]}}"
                       if p["arith"] else f"{{1'b0, q[{width - 1}:1]}}")
        sign_fill_4 = (f"{{{{4{{q[{width - 1}]}}}}, q[{width - 1}:4]}}"
                       if p["arith"] else f"{{4'b0000, q[{width - 1}:4]}}")
        big = p["big_shift"]
        return (
            "always @(posedge clk) begin\n"
            "    if (load) q <= data;\n"
            "    else if (ena) begin\n"
            "        case (amount)\n"
            "            2'd0: q <= q << 1;\n"
            f"            2'd1: q <= q << {big};\n"
            f"            2'd2: q <= {sign_fill_1};\n"
            f"            2'd3: q <= {sign_fill_4};\n"
            "        endcase\n"
            "    end\n"
            "end")

    def model_step(p):
        sign = width - 1
        if p["arith"]:
            right1 = (f"((self.q >> 1) | (0x{1 << sign:X} "
                      f"if self.q & 0x{1 << sign:X} else 0))")
            right4 = (f"((self.q >> 4) | ((0x{mask:X} << {width - 4}) "
                      f"& 0x{mask:X} if self.q & 0x{1 << sign:X} else 0))")
        else:
            right1 = "(self.q >> 1)"
            right4 = "(self.q >> 4)"
        return (
            "if inputs['load'] & 1:\n"
            f"    self.q = inputs['data'] & 0x{mask:X}\n"
            "elif inputs['ena'] & 1:\n"
            "    amount = inputs['amount'] & 3\n"
            "    if amount == 0:\n"
            f"        self.q = (self.q << 1) & 0x{mask:X}\n"
            "    elif amount == 1:\n"
            f"        self.q = (self.q << {p['big_shift']}) & 0x{mask:X}\n"
            "    elif amount == 2:\n"
            f"        self.q = {right1}\n"
            "    else:\n"
            f"        self.q = {right4}\n"
            "return {'q': self.q}"
        )

    def scenarios(p, rng):
        from ._base import scenario as make_scenario
        plans = []
        for k in range(1, 7):
            vectors = [{"load": 1, "ena": 0, "amount": 0,
                        "data": rng.randrange(1 << width)}]
            for _ in range(6):
                vectors.append({"load": 0, "ena": 1,
                                "amount": rng.randrange(4), "data": 0})
            plans.append(make_scenario(
                k, f"load_then_shift_{k}",
                "Load a value then apply shifts.", vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit arithmetic shift register",
        difficulty=difficulty, ports=ports,
        params={"arith": True, "big_shift": 4},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.q = 0", model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("logical_right", "right shifts fill with zeros",
                    arith=False),
            variant("big_shift_wrong", "the by-4 left shift moves 3 bits",
                    big_shift=3),
        ],
        reg_outputs=["q"],
    )


def build():
    return [
        _sipo_task("seq_sipo4", 4, False, 0.25),
        _sipo_task("seq_sipo8_en", 8, True, 0.33),
        _rotate_task("seq_rot4", 4, 0.35),
        _arith_shift_task("seq_ashift8", 8, 0.55),
    ]
