"""Edge-detection tasks (per-bit and sticky-capture variants)."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset,
                    seq_scenarios, variant)

FAMILY = "edge"


def _edge_detect_task(task_id: str, width: int, edge_kind: str,
                      difficulty: float):
    ports = (clock(), reset(), in_port("din", width),
             out_port("pulse", width))
    mask = (1 << width) - 1

    exprs_rtl = {
        "rise": "din & ~prev",
        "fall": "~din & prev",
        "both": "din ^ prev",
    }
    exprs_py = {
        "rise": "value & ~self.prev",
        "fall": "~value & self.prev",
        "both": "value ^ self.prev",
    }
    words = {"rise": "0-to-1", "fall": "1-to-0", "both": "any"}

    def spec_body(p):
        return (f"Per-bit {words[edge_kind]} edge detector: pulse[i] is 1 "
                "for one cycle when bit din[i] made that transition "
                "between the previous and the current rising edge. "
                "Synchronous reset clears the tracking state and output.")

    def rtl_body(p):
        expr = exprs_rtl[p["kind"]]
        return (
            f"reg [{width - 1}:0] prev;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            f"        prev <= {width}'d0;\n"
            f"        pulse <= {width}'d0;\n"
            "    end else begin\n"
            f"        pulse <= {expr};\n"
            "        prev <= din;\n"
            "    end\n"
            "end")

    def model_step(p):
        expr = exprs_py[p["kind"]]
        return (
            "if inputs['reset'] & 1:\n"
            "    self.prev = 0\n"
            "    self.pulse = 0\n"
            "else:\n"
            f"    value = inputs['din'] & 0x{mask:X}\n"
            f"    self.pulse = ({expr}) & 0x{mask:X}\n"
            "    self.prev = value\n"
            "return {'pulse': self.pulse}"
        )

    others = [k for k in exprs_rtl if k != edge_kind]
    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit {words[edge_kind]} edge detector",
        difficulty=difficulty, ports=ports, params={"kind": edge_kind},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.prev = 0\nself.pulse = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=7),
        variants=[
            variant(f"detects_{others[0]}",
                    f"detects {words[others[0]]} edges instead",
                    kind=others[0]),
            variant(f"detects_{others[1]}",
                    f"detects {words[others[1]]} edges instead",
                    kind=others[1]),
        ],
        reg_outputs=["pulse"],
    )


def _capture_task(task_id: str, width: int, difficulty: float):
    """Sticky edge capture (HDLBits ``edgecapture`` shape)."""
    ports = (clock(), reset(), in_port("din", width),
             out_port("captured", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"Sticky {width}-bit falling-edge capture: once bit "
                "din[i] goes from 1 to 0, captured[i] stays 1 until the "
                "synchronous reset clears it.")

    def rtl_body(p):
        edge = ("din & ~prev" if p["capture_rise"] else "~din & prev")
        acc = ("" if p["non_sticky"] else "captured | ")
        return (
            f"reg [{width - 1}:0] prev;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            "        prev <= din;\n"
            f"        captured <= {width}'d0;\n"
            "    end else begin\n"
            f"        captured <= {acc}({edge});\n"
            "        prev <= din;\n"
            "    end\n"
            "end")

    def model_step(p):
        edge = ("value & ~self.prev" if p["capture_rise"]
                else "~value & self.prev")
        acc = "" if p["non_sticky"] else "self.captured | "
        return (
            f"value = inputs['din'] & 0x{mask:X}\n"
            "if inputs['reset'] & 1:\n"
            "    self.prev = value\n"
            "    self.captured = 0\n"
            "else:\n"
            f"    self.captured = ({acc}({edge})) & 0x{mask:X}\n"
            "    self.prev = value\n"
            "return {'captured': self.captured}"
        )

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{width}-bit sticky edge capture", difficulty=difficulty,
        ports=ports,
        params={"capture_rise": False, "non_sticky": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: "self.prev = 0\nself.captured = 0",
        model_step=model_step,
        scenario_builder=lambda p, rng: seq_scenarios(
            ports, rng, reset_name="reset", n_scenarios=5, cycles_per=8),
        variants=[
            variant("captures_rising", "captures rising edges instead",
                    capture_rise=True),
            variant("not_sticky", "forgets the capture after one cycle",
                    non_sticky=True),
        ],
        reg_outputs=["captured"],
    )


def build():
    return [
        _edge_detect_task("seq_rise8", 8, "rise", 0.30),
        _edge_detect_task("seq_fall4", 4, "fall", 0.30),
        _edge_detect_task("seq_anyedge1", 1, "both", 0.26),
        _capture_task("seq_capture8", 8, 0.48),
    ]
