"""Small register-file tasks (1 write port, 1 combinational read port)."""

from __future__ import annotations

from ..model import SEQ
from ._base import (build_task, clock, in_port, out_port, reset, scenario,
                    variant)

FAMILY = "regfile"


def _regfile_task(task_id: str, n_words: int, width: int,
                  difficulty: float):
    addr_width = max(1, (n_words - 1).bit_length())
    ports = (clock(), reset(), in_port("we", 1),
             in_port("waddr", addr_width), in_port("wdata", width),
             in_port("raddr", addr_width), out_port("rdata", width))
    mask = (1 << width) - 1

    def spec_body(p):
        return (f"A {n_words}x{width}-bit register file with one "
                "synchronous write port (we, waddr, wdata) and one "
                "combinational read port: rdata continuously shows the "
                "word at raddr. Synchronous reset clears every word.")

    def rtl_body(p):
        w_src, r_src = ("raddr", "waddr") if p["ports_swapped"] else (
            "waddr", "raddr")
        write = (f"if (we) mem[{w_src}] <= wdata;"
                 if not p["we_ignored"] else f"mem[{w_src}] <= wdata;")
        return (
            f"reg [{width - 1}:0] mem [{n_words - 1}:0];\n"
            "integer i;\n"
            "always @(posedge clk) begin\n"
            "    if (reset) begin\n"
            f"        for (i = 0; i < {n_words}; i = i + 1) begin\n"
            f"            mem[i] <= {width}'d0;\n"
            "        end\n"
            "    end else begin\n"
            f"        {write}\n"
            "    end\n"
            "end\n"
            f"assign rdata = mem[{r_src}];")

    def model_step(p):
        w_src, r_src = ("raddr", "waddr") if p["ports_swapped"] else (
            "waddr", "raddr")
        if p["we_ignored"]:
            write = f"    self.mem[waddr] = inputs['wdata'] & 0x{mask:X}"
        else:
            write = (
                "    if inputs['we'] & 1:\n"
                f"        self.mem[waddr] = inputs['wdata'] & 0x{mask:X}")
        return (
            f"waddr = inputs['{w_src}'] & {n_words - 1}\n"
            f"raddr = inputs['{r_src}'] & {n_words - 1}\n"
            "if inputs['reset'] & 1:\n"
            f"    self.mem = [0] * {n_words}\n"
            "else:\n"
            f"{write}\n"
            "return {'rdata': self.mem[raddr]}"
        )

    def scenarios(p, rng):
        plans = []
        for k in range(1, 6):
            vectors = [{"reset": 1, "we": 0, "waddr": 0, "wdata": 0,
                        "raddr": 0}]
            writes = []
            for _ in range(n_words):
                addr = rng.randrange(n_words)
                data = rng.randrange(1 << width)
                writes.append(addr)
                vectors.append({"reset": 0, "we": 1, "waddr": addr,
                                "wdata": data,
                                "raddr": rng.randrange(n_words)})
            for addr in writes:
                vectors.append({"reset": 0, "we": 0, "waddr": 0,
                                "wdata": rng.randrange(1 << width),
                                "raddr": addr})
            plans.append(scenario(
                k, f"write_then_read_{k}",
                "Write random words then read them back.", vectors))
        return tuple(plans)

    return build_task(
        task_id=task_id, family=FAMILY, kind=SEQ,
        title=f"{n_words}x{width} register file", difficulty=difficulty,
        ports=ports, params={"ports_swapped": False, "we_ignored": False},
        spec_body=spec_body, rtl_body=rtl_body,
        model_init=lambda p: f"self.mem = [0] * {n_words}",
        model_step=model_step,
        scenario_builder=scenarios,
        variants=[
            variant("address_ports_swapped",
                    "read and write addresses exchanged",
                    ports_swapped=True),
            variant("write_enable_ignored", "writes every cycle",
                    we_ignored=True),
        ],
    )


def build():
    return [
        _regfile_task("seq_regfile4x8", 4, 8, 0.55),
        _regfile_task("seq_regfile8x4", 8, 4, 0.58),
    ]
