"""``repro.problems`` — the 156-task benchmark dataset.

Rebuilds the population structure of the paper's dataset (VerilogEval-Human
extended; 81 combinational + 75 sequential HDLBits-style tasks), each with
a natural-language spec, golden RTL, a golden Python reference model, a
canonical scenario plan and behavioural misconception variants.
"""

from .dataset import (DatasetError, dataset_slice, get_task, load_dataset,
                      tasks_of_kind)
from .model import (CMB, SEQ, CheckerModelError, Port, Scenario, TaskSpec,
                    Variant, load_ref_model, run_model_on_plan)

__all__ = [
    "CMB",
    "CheckerModelError",
    "DatasetError",
    "Port",
    "SEQ",
    "Scenario",
    "TaskSpec",
    "Variant",
    "dataset_slice",
    "get_task",
    "load_dataset",
    "load_ref_model",
    "run_model_on_plan",
    "tasks_of_kind",
]
