"""The testbench-generation service: admission, routing, execution.

One :class:`TestbenchService` owns four moving parts:

- an **asyncio HTTP server** (handwritten HTTP/1.1, see
  :mod:`repro.service.protocol`) with keep-alive connections;
- an **admission gate**: at most ``queue_limit`` requests may be
  admitted-but-unfinished at once.  Past the limit the server answers
  ``429 Too Many Requests`` with a ``Retry-After`` hint derived from
  the observed service rate — callers get an explicit backpressure
  signal instead of unbounded queueing;
- a **micro-batcher** (:mod:`repro.service.batcher`): simulate jobs
  that share a driver, sweep kind, resolved
  :class:`~repro.hdl.context.SimContext` and tenant scope coalesce into
  one :func:`~repro.core.simulation.run_driver_batch` /
  :func:`~repro.core.simulation.run_monolithic_batch` call inside a
  short batch window;
- a **thread executor** running the batches (each batch may further fan
  out across the persistent sim *process* pool, per the context's
  ``jobs``).  A batch that trips over a broken pool retries once after
  :func:`~repro.core.simulation.shutdown_sim_pool` — the pool heals
  warm (see PR 5) and no admitted request is dropped.

Per-request configuration resolves through
:func:`repro.hdl.context.context_from_request`: ``X-Repro-*`` headers
first, then the body's ``"context"`` object, layered over the context
the service was started with.  Tenants (``X-Repro-Tenant`` header or
``"tenant"`` body field) get isolated template-cache scopes via
:func:`repro.core.caches.tenant_scope`.

Shutdown drains: the listener closes first (new connections are
refused), open batch windows flush, and in-flight work finishes —
bounded by ``drain_timeout`` — before the executor stops.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from ..core.caches import tenant_scope, use_task_scope
from ..core.simulation import (run_driver_batch, run_monolithic_batch,
                               shutdown_sim_pool, sim_pool_info,
                               simulation_cache_stats)
from ..hdl.context import (SimContext, context_from_request,
                           current_context, use_context)
from .batcher import MicroBatcher
from .config import ServiceConfig, service_config_from_env
from .protocol import (ProtocolError, Request, json_body, read_request,
                       render_response)

#: Simulate sweep kinds accepted by ``POST /v1/simulate``.
SIMULATE_KINDS = ("hybrid", "monolithic")


class RequestError(Exception):
    """A semantically invalid request (syntactically fine HTTP)."""

    def __init__(self, status: int, code: str, detail: str):
        super().__init__(detail)
        self.status = status
        self.code = code
        self.detail = detail


def _error_body(code: str, detail: str) -> bytes:
    return json_body({"error": {"code": code, "detail": detail}})


# ----------------------------------------------------------------------
# Batch runners (executor threads)
# ----------------------------------------------------------------------
def _run_simulate_batch(key, duts: list[str]) -> list:
    """Execute one coalesced simulate batch.

    ``key`` is the batcher compatibility key: everything that must be
    identical for jobs to share one batch call.  A broken worker pool
    is healed once (shutdown + lazy recreate inside the batch API);
    queued service requests are unaffected either way — they are parked
    in the admission gate and the batcher, not in the dead pool.
    """
    kind, driver_src, context, scope = key
    batch = (run_monolithic_batch if kind == "monolithic"
             else run_driver_batch)
    with use_context(context), use_task_scope(scope):
        try:
            return batch(driver_src, duts, context=context)
        except BrokenProcessPool:
            # _pool_map already healed once; a second break lands here.
            # Recreate once more (warm, from this process's caches) —
            # persistent failure then surfaces as a 500 on this batch
            # only.
            shutdown_sim_pool(wait=False)
            return batch(driver_src, duts, context=context)


def _run_generate(item: tuple):
    """Execute one testbench-generation job (a full method pipeline)."""
    from ..eval.campaign import run_one

    method, task_id, seed, model, criterion, context, scope = item
    with use_task_scope(scope):
        return run_one(method, task_id, seed=seed, profile_name=model,
                       criterion_name=criterion, context=context)


# ----------------------------------------------------------------------
# The service
# ----------------------------------------------------------------------
class TestbenchService:
    """The asyncio application object (one instance per server).

    Construct, then ``await start()`` inside a running loop.  ``port``
    reports the bound port (useful with ``config.port=0``, which binds
    an ephemeral port).  Use :class:`ServiceThread` to host one on a
    background thread.
    """

    __test__ = False  # not a pytest class, despite the Test* name

    def __init__(self, config: ServiceConfig | None = None,
                 context: SimContext | None = None):
        self.config = config if config is not None \
            else service_config_from_env()
        self.base_context = (context if context is not None
                             else current_context())
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._batcher: MicroBatcher | None = None
        self._draining = False
        self._started_at = 0.0
        # Admission gate: requests admitted but not yet answered.
        self._admitted = 0
        self._idle: asyncio.Event | None = None
        # Telemetry counters.
        self._requests_total = 0
        self._responses: dict[int, int] = {}
        self._rejected_429 = 0
        self._latency_ewma_s = 0.0
        self._routes = {
            ("GET", "/v1/healthz"): self._handle_healthz,
            ("GET", "/v1/status"): self._handle_status,
            ("POST", "/v1/simulate"): self._handle_simulate,
            ("POST", "/v1/generate"): self._handle_generate,
        }

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        config = self.config
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers,
            thread_name_prefix="repro-service")
        self._batcher = MicroBatcher(
            _run_simulate_batch, self._executor,
            window_s=config.batch_window_ms / 1000.0,
            max_batch=config.batch_max)
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_connection, host=config.host, port=config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI path)."""
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def shutdown(self, drain: bool = True) -> None:
        """Stop the service.

        With ``drain`` (the default): close the listener so new
        connections are refused, flush every open batch window, then
        wait — up to ``config.drain_timeout`` seconds — for all
        admitted requests to be answered before stopping the executor.
        Without it, in-flight work is abandoned (the executor threads
        still run to completion, daemon-style, but nobody waits).
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._batcher is not None:
            self._batcher.flush_all()
            try:
                await asyncio.wait_for(self._idle.wait(),
                                       timeout=self.config.drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
            await self._batcher.join()
        if self._executor is not None:
            self._executor.shutdown(wait=drain, cancel_futures=not drain)

    # -- admission -----------------------------------------------------
    def _retry_after(self) -> int:
        """Seconds a 429'd caller should back off: the time the current
        backlog needs at the observed per-request service rate, clamped
        to [1, 30]."""
        per_request = self._latency_ewma_s or 0.05
        estimate = (self._admitted * per_request
                    / max(1, self.config.workers))
        return max(1, min(30, int(estimate + 0.999)))

    def _admit(self) -> None:
        if self._draining:
            raise RequestError(503, "draining",
                               "server is draining; not accepting work")
        if self._admitted >= self.config.queue_limit:
            self._rejected_429 += 1
            raise RequestError(429, "queue-full",
                               f"admission queue is full "
                               f"({self.config.queue_limit} requests); "
                               f"retry later")
        self._admitted += 1
        self._idle.clear()

    def _release(self, started: float) -> None:
        self._admitted -= 1
        if self._admitted <= 0:
            self._idle.set()
        elapsed = time.monotonic() - started
        if self._latency_ewma_s == 0.0:
            self._latency_ewma_s = elapsed
        else:
            self._latency_ewma_s += 0.2 * (elapsed - self._latency_ewma_s)

    # -- connection handling -------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body)
                except ProtocolError as exc:
                    self._count_response(exc.status)
                    writer.write(render_response(
                        exc.status,
                        _error_body("protocol-error", exc.detail),
                        close=True))
                    await writer.drain()
                    break
                if request is None:
                    break
                raw, close = await self._respond(request)
                writer.write(raw)
                await writer.drain()
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError,
                TimeoutError):  # pragma: no cover - client went away
            pass
        except asyncio.CancelledError:
            # Shutdown cancels idle keep-alive connections; finish the
            # task cleanly so the stream protocol does not log it.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    OSError):  # pragma: no cover - already torn down
                pass

    async def _respond(self, request: Request) -> tuple[bytes, bool]:
        self._requests_total += 1
        handler = self._routes.get((request.method, request.path))
        extra: dict = {}
        close = request.close or self._draining
        if handler is None:
            allowed = [method for method, path in self._routes
                       if path == request.path]
            if allowed:
                status = 405
                body = _error_body(
                    "method-not-allowed",
                    f"{request.method} not allowed on {request.path}")
                extra["Allow"] = ", ".join(sorted(allowed))
            else:
                status = 404
                body = _error_body("not-found",
                                   f"no such endpoint: {request.path}")
        else:
            try:
                status, payload = await handler(request)
                body = json_body(payload)
            except RequestError as exc:
                status = exc.status
                body = _error_body(exc.code, exc.detail)
                if status == 429:
                    extra["Retry-After"] = str(self._retry_after())
            except ProtocolError as exc:
                status = exc.status
                body = _error_body("protocol-error", exc.detail)
            except Exception as exc:  # noqa: BLE001 - request boundary
                status = 500
                body = _error_body(
                    "internal", f"{type(exc).__name__}: {exc}")
        self._count_response(status)
        return render_response(status, body, extra_headers=extra,
                               close=close), close

    def _count_response(self, status: int) -> None:
        self._responses[status] = self._responses.get(status, 0) + 1

    # -- request decoding ----------------------------------------------
    def _request_context(self, request: Request, body: dict) -> SimContext:
        overrides: dict = {}
        for name in ("engine", "lexer", "mutant-engine", "max-time",
                     "max-stmts"):
            value = request.header(f"x-repro-{name}")
            if value:
                overrides[name.replace("-", "_")] = value
        body_context = body.get("context", {})
        if not isinstance(body_context, dict):
            raise RequestError(400, "bad-context",
                               '"context" must be a JSON object')
        overrides.update(body_context)
        try:
            return context_from_request(overrides, base=self.base_context)
        except ValueError as exc:
            raise RequestError(400, "bad-context", str(exc)) from None

    @staticmethod
    def _tenant(request: Request, body: dict) -> str:
        tenant = body.get("tenant", request.header("x-repro-tenant"))
        if not isinstance(tenant, str):
            raise RequestError(400, "bad-tenant",
                               '"tenant" must be a string')
        return tenant

    @staticmethod
    def _required_str(body: dict, name: str) -> str:
        value = body.get(name)
        if not isinstance(value, str) or not value:
            raise RequestError(400, "bad-request",
                               f'"{name}" must be a non-empty string')
        return value

    def _select_backend(self, body: dict,
                        context: SimContext) -> SimContext:
        """Apply the request's ``"backend"`` selector, whitelisted.

        ``llm_backend`` is an operator knob (deliberately outside
        ``REQUEST_CONTEXT_FIELDS``): a request may only pick
        ``"synthetic"`` or whatever backend the server was *started*
        with — it can never point a shared server at a new endpoint.
        """
        backend = body.get("backend", "")
        if not isinstance(backend, str):
            raise RequestError(400, "bad-backend",
                               '"backend" must be a string')
        if not backend:
            return context
        allowed = {"synthetic", self.base_context.llm_backend}
        allowed.discard("")
        if backend not in allowed:
            raise RequestError(
                400, "bad-backend",
                f"backend {backend!r} is not enabled on this server; "
                f"allowed: {sorted(allowed)}")
        return context.evolve(
            llm_backend="" if backend == "synthetic" else backend)

    # -- handlers ------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> tuple[int, dict]:
        return 200, {"status": "draining" if self._draining else "ok"}

    async def _handle_status(self, request: Request) -> tuple[int, dict]:
        batcher = self._batcher
        return 200, {
            "service": {
                "draining": self._draining,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "requests_total": self._requests_total,
                "responses": {str(code): count for code, count
                              in sorted(self._responses.items())},
                "rejected_429": self._rejected_429,
                "latency_ewma_ms": round(self._latency_ewma_s * 1000, 3),
                "queue": {
                    "admitted": self._admitted,
                    "limit": self.config.queue_limit,
                    "batcher_pending": batcher.pending,
                    "batches_in_flight": batcher.in_flight,
                },
            },
            "batcher": batcher.stats.snapshot(),
            "sim_pool": _jsonable(sim_pool_info()),
            "caches": _jsonable(simulation_cache_stats()),
        }

    async def _handle_simulate(self, request: Request) -> tuple[int, dict]:
        body = request.json()
        driver = self._required_str(body, "driver")
        dut = self._required_str(body, "dut")
        kind = body.get("kind", "hybrid")
        if kind not in SIMULATE_KINDS:
            raise RequestError(400, "bad-request",
                               f'"kind" must be one of {SIMULATE_KINDS}, '
                               f"got {kind!r}")
        context = self._request_context(request, body)
        scope = tenant_scope(self._tenant(request, body))
        self._admit()
        started = time.monotonic()
        try:
            key = (kind, driver, context, scope)
            run = await self._batcher.submit(key, dut)
        finally:
            self._release(started)
        payload: dict = {"status": run.status, "detail": run.detail}
        if kind == "monolithic":
            payload["verdict"] = run.verdict
        else:
            payload["records"] = [
                {"scenario": record.scenario, "values": record.values}
                for record in run.records]
            payload["stdout"] = list(run.stdout)
        return 200, payload

    async def _handle_generate(self, request: Request) -> tuple[int, dict]:
        from ..core.validator import CRITERIA, DEFAULT_CRITERION
        from ..eval.methods import registered_methods
        from ..llm.profiles import get_profile
        from ..problems import load_dataset

        body = request.json()
        method = body.get("method", "correctbench")
        if method not in registered_methods():
            raise RequestError(400, "bad-request",
                               f"unknown method {method!r}; registered: "
                               f"{registered_methods()}")
        task_id = self._required_str(body, "task")
        if task_id not in {task.task_id for task in load_dataset()}:
            raise RequestError(400, "bad-request",
                               f"unknown task {task_id!r}")
        seed = body.get("seed", 0)
        if not isinstance(seed, int):
            raise RequestError(400, "bad-request",
                               '"seed" must be an integer')
        model = body.get("model", "gpt-4o")
        if not isinstance(model, str) or not model:
            raise RequestError(400, "bad-request",
                               '"model" must be a non-empty string')
        criterion = body.get("criterion", DEFAULT_CRITERION.name)
        if criterion not in CRITERIA:
            raise RequestError(400, "bad-request",
                               f"unknown criterion {criterion!r}; known: "
                               f"{tuple(sorted(CRITERIA))}")
        context = self._request_context(request, body)
        context = self._select_backend(body, context)
        spec = context.llm_backend or "synthetic"
        if spec == "synthetic" or spec.endswith("+synthetic"):
            # Any spec bottoming out in the synthetic tier resolves the
            # model as a reliability profile; live adapters and fixture
            # replay take provider model ids the profile table cannot
            # know about.
            try:
                get_profile(model)
            except (KeyError, AttributeError):
                raise RequestError(400, "bad-request",
                                   f"unknown model {model!r}") from None
        scope = tenant_scope(self._tenant(request, body), task_id)
        self._admit()
        started = time.monotonic()
        try:
            loop = asyncio.get_running_loop()
            run = await loop.run_in_executor(
                self._executor, _run_generate,
                (method, task_id, seed, model, criterion, context, scope))
        finally:
            self._release(started)
        return 200, {
            "method": run.method, "task": run.task_id,
            "kind": run.kind, "seed": run.seed,
            "level": run.level.label,
            "validated": run.validated, "gave_up": run.gave_up,
            "corrections": run.corrections, "reboots": run.reboots,
            "usage": {"input_tokens": run.usage.input_tokens,
                      "output_tokens": run.usage.output_tokens},
        }


def _jsonable(value):
    """Make telemetry dicts JSON-clean (tuples -> lists)."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return value


# ----------------------------------------------------------------------
# Background-thread hosting (tests, benches, embedding)
# ----------------------------------------------------------------------
class ServiceThread:
    """Run a :class:`TestbenchService` on a dedicated event-loop thread.

    ``start()`` blocks until the port is bound (or raises the startup
    error); ``stop()`` drains and joins.  The CLI uses the asyncio-native
    path instead; this wrapper exists for tests, the throughput bench
    and embedders that are not async themselves.
    """

    def __init__(self, config: ServiceConfig | None = None,
                 context: SimContext | None = None):
        self.service = TestbenchService(config, context)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.service.port is not None, "service not started"
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.config.host}:{self.port}"

    def start(self) -> "ServiceThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service-loop")
        self._thread.start()
        if not self._ready.wait(timeout=30):  # pragma: no cover
            raise RuntimeError("service failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.service.start())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True))
            loop.close()

    def stop(self, drain: bool = True) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.service.shutdown(drain=drain), self._loop)
        try:
            future.result(timeout=self.service.config.drain_timeout + 30)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
