"""Service configuration: one frozen knob bundle, env-seedable.

Mirrors the :class:`~repro.hdl.context.SimContext` design: an immutable
validated dataclass, seeded once from ``REPRO_SERVICE_*`` environment
variables (malformed values warn on stderr and fall back to the
defaults — a misspelt knob must degrade a deployment, never kill it),
overridable per invocation through ``repro serve`` flags.

The knobs cover the three operational surfaces the runbook
(``docs/service.md``) documents:

- **admission** — ``queue_limit`` bounds admitted-but-unfinished
  requests; past it the server answers ``429`` with a ``Retry-After``
  hint instead of queueing without bound.
- **micro-batching** — ``batch_window_ms`` is how long the first job of
  a batch window waits for compatible companions; ``batch_max`` flushes
  a window early once that many jobs coalesced.  ``batch_max=1``
  disables coalescing (every request simulates alone), which is the
  "unbatched serial" leg of the ``service_throughput`` bench.
- **execution** — ``workers`` sizes the thread pool that runs simulate
  batches (each batch may additionally fan out across the sim *process*
  pool via the active context's ``jobs``); ``max_body`` caps request
  bodies (``413`` past it); ``drain_timeout`` bounds how long shutdown
  waits for in-flight work.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, replace

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8322
DEFAULT_QUEUE_LIMIT = 64
DEFAULT_BATCH_WINDOW_MS = 2.0
DEFAULT_BATCH_MAX = 16
DEFAULT_WORKERS = 4
DEFAULT_MAX_BODY = 1_048_576
DEFAULT_DRAIN_TIMEOUT = 10.0


@dataclass(frozen=True, slots=True)
class ServiceConfig:
    """One immutable bundle of service knobs.

    Validated on construction, so a bad deployment config fails at the
    call site that built it, not mid-request.

    >>> ServiceConfig().queue_limit
    64
    >>> ServiceConfig(batch_max=0)
    Traceback (most recent call last):
        ...
    ValueError: batch_max must be a positive integer, got 0
    >>> ServiceConfig().evolve(batch_window_ms=0).batch_window_ms
    0.0
    """

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    queue_limit: int = DEFAULT_QUEUE_LIMIT
    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS
    batch_max: int = DEFAULT_BATCH_MAX
    workers: int = DEFAULT_WORKERS
    max_body: int = DEFAULT_MAX_BODY
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT

    def __post_init__(self):
        if not isinstance(self.host, str) or not self.host:
            raise ValueError(f"host must be a non-empty string, "
                             f"got {self.host!r}")
        if not isinstance(self.port, int) or not 0 <= self.port <= 65535:
            raise ValueError(f"port must be an integer in [0, 65535] "
                             f"(0 = ephemeral), got {self.port!r}")
        for name in ("queue_limit", "batch_max", "workers", "max_body"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(f"{name} must be a positive integer, "
                                 f"got {value!r}")
        for name in ("batch_window_ms", "drain_timeout"):
            value = getattr(self, name)
            if isinstance(value, int):
                object.__setattr__(self, name, float(value))
                value = float(value)
            if not isinstance(value, float) or value < 0:
                raise ValueError(f"{name} must be a non-negative number, "
                                 f"got {value!r}")

    def evolve(self, **overrides) -> "ServiceConfig":
        """A copy with ``overrides`` applied (and re-validated)."""
        return replace(self, **overrides)


def _warn_env(message: str) -> None:
    print(f"warning: {message}", file=sys.stderr)


_ENV_INT_FIELDS = (
    ("REPRO_SERVICE_PORT", "port", 0),
    ("REPRO_SERVICE_QUEUE_LIMIT", "queue_limit", 1),
    ("REPRO_SERVICE_BATCH_MAX", "batch_max", 1),
    ("REPRO_SERVICE_WORKERS", "workers", 1),
    ("REPRO_SERVICE_MAX_BODY", "max_body", 1),
)
_ENV_FLOAT_FIELDS = (
    ("REPRO_SERVICE_BATCH_WINDOW_MS", "batch_window_ms"),
    ("REPRO_SERVICE_DRAIN_TIMEOUT", "drain_timeout"),
)


def service_config_from_env(environ=None) -> ServiceConfig:
    """Build a :class:`ServiceConfig` from ``REPRO_SERVICE_*`` knobs.

    Invalid values warn on stderr and keep the field's default,
    mirroring the ``SimContext`` env-seeding contract.

    >>> service_config_from_env({"REPRO_SERVICE_PORT": "9000"}).port
    9000
    >>> service_config_from_env({}).batch_max == DEFAULT_BATCH_MAX
    True
    """
    if environ is None:
        environ = os.environ
    overrides: dict = {}

    host = environ.get("REPRO_SERVICE_HOST")
    if host is not None:
        if host.strip():
            overrides["host"] = host.strip()
        else:
            _warn_env("REPRO_SERVICE_HOST is empty; using "
                      f"{DEFAULT_HOST!r}")

    for env_name, field_name, floor in _ENV_INT_FIELDS:
        raw = environ.get(env_name)
        if raw is None:
            continue
        try:
            value = int(raw)
        except ValueError:
            _warn_env(f"{env_name}={raw!r} is not an integer; "
                      f"using the default")
            continue
        if value < floor or (field_name == "port" and value > 65535):
            _warn_env(f"{env_name}={raw!r} is out of range; "
                      f"using the default")
            continue
        overrides[field_name] = value

    for env_name, field_name in _ENV_FLOAT_FIELDS:
        raw = environ.get(env_name)
        if raw is None:
            continue
        try:
            value = float(raw)
        except ValueError:
            _warn_env(f"{env_name}={raw!r} is not a number; "
                      f"using the default")
            continue
        if value < 0:
            _warn_env(f"{env_name}={raw!r} must be >= 0; "
                      f"using the default")
            continue
        overrides[field_name] = value

    return ServiceConfig(**overrides)
