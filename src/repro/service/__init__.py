"""``repro.service`` — the asyncio testbench-generation service.

The context / registry / warm-pool stack (``SimContext`` resolution,
per-task cache scopes, spawn-safe warm workers) was shaped for a
long-lived server; this package is that server.  A handwritten
HTTP/1.1 layer (:mod:`repro.service.protocol`, stdlib-only) fronts a
bounded admission queue with explicit backpressure, a cross-request
micro-batcher that coalesces compatible simulate jobs into
:func:`repro.core.simulation.run_driver_batch` windows
(:mod:`repro.service.batcher`), per-tenant task-scoped caches and
per-request ``SimContext`` resolution (:mod:`repro.service.app`).

Entry points:

- ``python -m repro.cli serve`` — run the server (and
  ``serve --status`` to query a running one);
- :class:`TestbenchService` — the asyncio application object;
- :class:`ServiceThread` — run a service on a background thread
  (tests, benchmarks, embedding);
- :class:`ServiceConfig` / :func:`service_config_from_env` — the
  operational knobs (``REPRO_SERVICE_*``).

See ``docs/service.md`` for the API reference and operations runbook.
"""

from .app import ServiceThread, TestbenchService
from .batcher import BatchStats, MicroBatcher
from .config import (DEFAULT_BATCH_MAX, DEFAULT_BATCH_WINDOW_MS,
                     DEFAULT_DRAIN_TIMEOUT, DEFAULT_HOST, DEFAULT_MAX_BODY,
                     DEFAULT_PORT, DEFAULT_QUEUE_LIMIT, DEFAULT_WORKERS,
                     ServiceConfig, service_config_from_env)
from .protocol import (ProtocolError, Request, parse_request_head,
                       read_request, render_response)

__all__ = [
    "BatchStats",
    "DEFAULT_BATCH_MAX",
    "DEFAULT_BATCH_WINDOW_MS",
    "DEFAULT_DRAIN_TIMEOUT",
    "DEFAULT_HOST",
    "DEFAULT_MAX_BODY",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_WORKERS",
    "MicroBatcher",
    "ProtocolError",
    "Request",
    "ServiceConfig",
    "ServiceThread",
    "TestbenchService",
    "parse_request_head",
    "read_request",
    "render_response",
    "service_config_from_env",
]
