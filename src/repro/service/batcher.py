"""Cross-request micro-batching of compatible jobs.

The batch simulation APIs (:func:`repro.core.simulation.run_driver_batch`
and friends) amortize per-driver costs — parse, elaboration, compiled
programs, process-pool fan-out — across many DUT variants.  A server
handling independent requests one at a time forfeits all of that: two
concurrent requests simulating different mutants of the same design
against the same driver would each pay a full serial run.

:class:`MicroBatcher` recovers the batch shape across requests.  Jobs
are submitted with a *compatibility key* (for simulate jobs: the driver
source, the sweep kind, the resolved ``SimContext`` and the tenant
scope — everything that must be identical for the jobs to share one
``run_driver_batch`` call).  The first job of a key opens a *window*:
a timer of ``window_s`` seconds during which later compatible jobs pile
into the same batch.  The window flushes early when ``max_batch`` jobs
have coalesced, or immediately when ``window_s`` is zero.  Flushing
hands the whole batch to a runner on an executor thread and fans the
per-job results (or the batch's exception) back to each submitter's
future.

The batcher is deliberately generic — it knows nothing about HTTP or
simulation; the service wires in a runner that activates the context
and tenant scope and calls the batch API.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class BatchStats:
    """Telemetry counters for one batcher (monotonic since boot)."""

    batches: int = 0          # runner invocations
    jobs: int = 0             # jobs submitted
    window_flushes: int = 0   # batches flushed by the window timer
    full_flushes: int = 0     # batches flushed by reaching max_batch
    max_batch: int = 0        # largest batch flushed so far
    # Histogram of flushed batch sizes: {size: count}.  Small by
    # construction (sizes are bounded by the batch_max knob).
    sizes: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {"batches": self.batches, "jobs": self.jobs,
                "window_flushes": self.window_flushes,
                "full_flushes": self.full_flushes,
                "max_batch": self.max_batch,
                "sizes": {str(size): count
                          for size, count in sorted(self.sizes.items())}}


class _Window:
    __slots__ = ("jobs", "futures", "timer")

    def __init__(self):
        self.jobs: list = []
        self.futures: list[asyncio.Future] = []
        self.timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Coalesce same-key jobs submitted within a window into one batch.

    ``runner(key, jobs)`` executes on ``executor`` and must return one
    result per job, in order.  A runner exception fails every job in
    the batch with that exception.

    Must be used from a single event loop (the service's); submitters
    are coroutines on that loop.
    """

    def __init__(self, runner: Callable, executor, *,
                 window_s: float = 0.002, max_batch: int = 16):
        self._runner = runner
        self._executor = executor
        self._window_s = max(0.0, float(window_s))
        self._max_batch = max(1, int(max_batch))
        self._windows: dict = {}
        self._in_flight: set[asyncio.Task] = set()
        self.stats = BatchStats()

    async def submit(self, key, job):
        """Queue ``job`` under ``key``; await its individual result."""
        loop = asyncio.get_running_loop()
        self.stats.jobs += 1
        future: asyncio.Future = loop.create_future()
        if self._max_batch == 1 or self._window_s == 0.0:
            # Coalescing disabled (or zero window): dispatch without
            # waiting, but still through the runner so every job takes
            # the same execution path.
            window = _Window()
            window.jobs.append(job)
            window.futures.append(future)
            self._dispatch(key, window, cause="window")
            return await future

        window = self._windows.get(key)
        if window is None:
            window = self._windows[key] = _Window()
            window.timer = loop.call_later(
                self._window_s, self._flush, key, "window")
        window.jobs.append(job)
        window.futures.append(future)
        if len(window.jobs) >= self._max_batch:
            self._flush(key, "full")
        return await future

    def _flush(self, key, cause: str) -> None:
        window = self._windows.pop(key, None)
        if window is None:
            return
        if window.timer is not None:
            window.timer.cancel()
        self._dispatch(key, window, cause)

    def flush_all(self) -> None:
        """Flush every open window immediately (drain path)."""
        for key in list(self._windows):
            self._flush(key, "window")

    @property
    def pending(self) -> int:
        """Jobs parked in open windows (not yet dispatched)."""
        return sum(len(window.jobs) for window in self._windows.values())

    @property
    def in_flight(self) -> int:
        """Dispatched batches whose runner has not finished yet."""
        return len(self._in_flight)

    async def join(self) -> None:
        """Wait for every dispatched batch to finish (drain path)."""
        while self._in_flight:
            await asyncio.wait(set(self._in_flight))

    def _dispatch(self, key, window: _Window, cause: str) -> None:
        size = len(window.jobs)
        self.stats.batches += 1
        self.stats.max_batch = max(self.stats.max_batch, size)
        self.stats.sizes[size] = self.stats.sizes.get(size, 0) + 1
        if cause == "full":
            self.stats.full_flushes += 1
        else:
            self.stats.window_flushes += 1
        task = asyncio.get_running_loop().create_task(
            self._run(key, window))
        self._in_flight.add(task)
        task.add_done_callback(self._in_flight.discard)

    async def _run(self, key, window: _Window) -> None:
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor, self._runner, key, list(window.jobs))
            if len(results) != len(window.jobs):  # pragma: no cover
                raise RuntimeError(
                    f"batch runner returned {len(results)} results "
                    f"for {len(window.jobs)} jobs")
        except Exception as exc:
            for future in window.futures:
                if not future.done():
                    future.set_exception(exc)
            return
        for future, result in zip(window.futures, results):
            if not future.done():
                future.set_result(result)
