"""Minimal HTTP/1.1 protocol layer over asyncio streams.

Handwritten and dependency-free on purpose: the service must not pull a
web framework into a repo whose only runtime dependency is the standard
library, and ``http.server`` is thread-per-connection — the wrong shape
for an asyncio front end.  The subset implemented here is exactly what
the service and its load generator need:

- request line + headers + ``Content-Length`` bodies (no chunked
  transfer encoding — requests carrying ``Transfer-Encoding`` are
  rejected with ``411``/``400`` semantics via :class:`ProtocolError`);
- persistent connections (HTTP/1.1 keep-alive by default,
  ``Connection: close`` honoured both ways);
- bounded reads everywhere: header block and body sizes are capped so a
  misbehaving client cannot balloon server memory.

The pure parsing core (:func:`parse_request_head`) is separated from
the stream I/O (:func:`read_request`) so it can be doctested and unit
tested without sockets.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Upper bound on the request line + header block (bytes).  Generous —
#: the service's own clients send a handful of short headers — but
#: finite, so a garbage stream cannot grow the buffer without bound.
MAX_HEAD_BYTES = 16_384

#: Reason phrases for the statuses the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or unsupported request.

    ``status`` is the HTTP status the connection handler should answer
    with before closing the connection (the stream position is no
    longer trustworthy after a parse failure).
    """

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str = ""
    headers: dict = field(default_factory=dict)  # lower-cased names
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def close(self) -> bool:
        """Did the client ask to drop the connection after this
        exchange?"""
        return self.header("connection").lower() == "close"

    def json(self):
        """Decode the body as a JSON object.

        Raises :class:`ProtocolError` (400) on undecodable bytes,
        invalid JSON, or a non-object top level — the service's request
        schemas are all JSON objects.
        """
        try:
            value = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: "
                                     f"{exc}") from None
        if not isinstance(value, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return value


def parse_request_head(head: bytes) -> Request:
    """Parse the request line + header block (no body yet).

    >>> req = parse_request_head(
    ...     b"GET /v1/status?verbose=1 HTTP/1.1\\r\\n"
    ...     b"Host: localhost\\r\\nX-Repro-Tenant: acme\\r\\n")
    >>> req.method, req.path, req.query
    ('GET', '/v1/status', 'verbose=1')
    >>> req.header("x-repro-tenant")
    'acme'
    >>> parse_request_head(b"BROKEN\\r\\n")
    Traceback (most recent call last):
        ...
    repro.service.protocol.ProtocolError: malformed request line: 'BROKEN'
    """
    lines = head.split(b"\r\n")
    try:
        request_line = lines[0].decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError(400, "request line is not ASCII") from None
    parts = request_line.split(" ")
    if len(parts) != 3 or not parts[0].isalpha():
        raise ProtocolError(400, f"malformed request line: "
                                 f"{request_line!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol version "
                                 f"{version!r}")
    if not target.startswith("/"):
        raise ProtocolError(400, f"unsupported request target "
                                 f"{target!r}")
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    for raw in lines[1:]:
        if not raw:
            continue
        try:
            line = raw.decode("latin-1")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise ProtocolError(400, "undecodable header line") from None
        name, sep, value = line.partition(":")
        if not sep or not name or name != name.strip() or " " in name:
            raise ProtocolError(400, f"malformed header line: {line!r}")
        headers[name.lower()] = value.strip()
    return Request(method=method.upper(), path=path, query=query,
                   headers=headers)


def _body_length(request: Request, max_body: int) -> int:
    if "transfer-encoding" in request.headers:
        raise ProtocolError(400, "chunked transfer encoding is not "
                                 "supported; send Content-Length")
    raw = request.header("content-length")
    if not raw:
        return 0
    try:
        length = int(raw)
    except ValueError:
        raise ProtocolError(400, f"invalid Content-Length "
                                 f"{raw!r}") from None
    if length < 0:
        raise ProtocolError(400, f"invalid Content-Length {length}")
    if length > max_body:
        raise ProtocolError(413, f"request body of {length} bytes "
                                 f"exceeds the {max_body}-byte limit")
    return length


#: ``read_request``'s default body cap (the service always passes its
#: configured ``max_body`` explicitly).
DEFAULT_MAX_BODY = 1_048_576


async def read_request(reader,
                       max_body: int = DEFAULT_MAX_BODY) -> Request | None:
    """Read one request from an asyncio stream.

    Returns ``None`` on a clean EOF before any bytes (the client closed
    a keep-alive connection between requests).  Raises
    :class:`ProtocolError` on malformed input, an oversized header
    block, oversized bodies, or a connection dropped mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between keep-alive requests
        raise ProtocolError(400, "connection closed mid-request") \
            from None
    except asyncio.LimitOverrunError:
        raise ProtocolError(400, "request head exceeds the "
                                 f"{MAX_HEAD_BYTES}-byte limit") from None
    if len(head) > MAX_HEAD_BYTES:
        raise ProtocolError(400, f"request head exceeds the "
                                 f"{MAX_HEAD_BYTES}-byte limit")
    request = parse_request_head(head[:-4])
    length = _body_length(request, max_body)
    if length:
        try:
            request.body = await reader.readexactly(length)
        except Exception:
            raise ProtocolError(400, "connection closed mid-body") \
                from None
    return request


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: dict | None = None,
                    close: bool = False) -> bytes:
    """Serialize one HTTP/1.1 response.

    >>> raw = render_response(200, b'{"status":"ok"}')
    >>> raw.split(b"\\r\\n")[0]
    b'HTTP/1.1 200 OK'
    >>> b'content-length: 15' in raw.lower()
    True
    """
    reason = REASONS.get(status, "Unknown")
    headers = {
        "Content-Type": content_type,
        "Content-Length": str(len(body)),
        "Connection": "close" if close else "keep-alive",
    }
    if extra_headers:
        headers.update(extra_headers)
    head = "".join(f"{name}: {value}\r\n"
                   for name, value in headers.items())
    return (f"HTTP/1.1 {status} {reason}\r\n{head}\r\n"
            .encode("ascii") + body)


def json_body(payload) -> bytes:
    """Encode a response payload as compact JSON bytes.

    >>> json_body({"a": 1})
    b'{"a":1}'
    """
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")
