"""CorrectBench reproduction — automatic testbench generation with
functional self-validation and self-correction for HDL design.

Reproduces Qiu et al., *CorrectBench: Automatic Testbench Generation with
Functional Self-Correction using LLMs for HDL Design* (DATE 2025,
arXiv:2411.08510), as a self-contained Python library:

- :mod:`repro.hdl` — a Verilog subset front end + 4-state event-driven
  simulator (replaces Icarus Verilog),
- :mod:`repro.llm` — the LLM substrate: client protocol, model
  reliability profiles, and the deterministic synthetic LLM,
- :mod:`repro.problems` — the 156-task benchmark population (81
  combinational + 75 sequential),
- :mod:`repro.mutation` — RTL mutants and fault injection,
- :mod:`repro.codegen` — driver / checker / testbench renderers,
- :mod:`repro.core` — AutoBench generator, baseline, RS-matrix
  validator, two-stage corrector and the Algorithm-1 agent,
- :mod:`repro.eval` — AutoEval (Eval0/1/2), campaigns, metrics and the
  paper's table/figure renderers.

Quickstart::

    from repro import quick_run
    result, level = quick_run("seq_count4_up")
    print(level.label, result.reboots, result.corrections)
"""

from .version import __version__


def quick_run(task_id: str, model: str = "gpt-4o", seed: int = 0):
    """Run CorrectBench end-to-end on one task and grade the result.

    Returns ``(WorkflowResult, EvalLevel)``.
    """
    from .core import CorrectBenchWorkflow
    from .eval import evaluate
    from .llm import MeteredClient, UsageMeter, get_profile
    from .llm.synthetic import SyntheticLLM
    from .problems import get_task

    task = get_task(task_id)
    client = MeteredClient(SyntheticLLM(get_profile(model), seed=seed),
                           UsageMeter())
    result = CorrectBenchWorkflow(client, task).run()
    level = evaluate(result.final_tb).level
    return result, level


__all__ = ["__version__", "quick_run"]
