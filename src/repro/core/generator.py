"""AutoBench: the hybrid-testbench generator (paper Fig. 2).

Stages, exactly as the paper describes them:

1. **Scenario list** — ask the LLM for the test scenarios.
2. **Verilog driver** — ask for the driver over those scenarios.
3. **Python checker** — ask for the checker core.
4. **Self-enhancement**:
   a. *auto-debug*: up to 3 syntax-repair iterations per artifact,
   b. *scenario-list checking*: restore scenarios the driver dropped,
   c. *code standardisation*: the fixed checker interface is appended by
      the framework (here: enforced by the checker runtime).

The generator is purely a client of :class:`LLMClient` — every branch
below runs identically against a live API model.
"""

from __future__ import annotations

from ..codegen import parse_driver_scenarios, parse_scenario_listing
from ..hdl.errors import VerilogSyntaxError
from ..llm.base import GenerationIntent, LLMClient, MeteredClient
from ..llm.conversation import single_turn
from ..problems.model import TaskSpec
from ..util import extract_first_code_block
from . import prompts
from .artifacts import HybridTestbench
from .simulation import parse_cached

MAX_DEBUG_ITERATIONS = 3


class AutoBenchGenerator:
    """Generates hybrid testbenches for one task."""

    def __init__(self, client: LLMClient | MeteredClient, task: TaskSpec):
        self.client = client
        self.task = task

    # ------------------------------------------------------------------
    def _ask(self, kind: str, prompt: str, **payload) -> str:
        payload.setdefault("task", self.task)
        # Routed through the conversation layer so the exchange lands in
        # the active trace session (see repro.core.trace).
        return single_turn(
            self.client, prompts.SYSTEM_TESTBENCH, prompt,
            GenerationIntent(kind, self.task.task_id, payload))

    # ------------------------------------------------------------------
    def generate(self, attempt: int = 0) -> HybridTestbench:
        """Run the full AutoBench pipeline once."""
        spec = self.task.spec_text

        listing_text = self._ask(
            "scenarios", prompts.scenario_prompt(spec), attempt=attempt)
        listing = parse_scenario_listing(listing_text)

        driver_reply = self._ask(
            "driver", prompts.driver_prompt(spec, listing_text),
            attempt=attempt)
        driver_src = extract_first_code_block(driver_reply, "verilog")

        checker_reply = self._ask(
            "checker", prompts.checker_prompt(spec, listing_text),
            attempt=attempt)
        checker_src = extract_first_code_block(checker_reply, "python")

        driver_src = self._debug_driver(driver_src, attempt)
        checker_src = self._debug_checker(checker_src, attempt)
        driver_src = self._complete_scenarios(driver_src, listing, attempt)

        scenarios = tuple(parse_driver_scenarios(driver_src))
        return HybridTestbench(
            task_id=self.task.task_id, driver_src=driver_src,
            checker_src=checker_src, scenarios=scenarios,
            origin="autobench", generation_index=attempt)

    # ------------------------------------------------------------------
    # Self-enhancement stage a: auto-debug
    # ------------------------------------------------------------------
    def _debug_driver(self, driver_src: str, attempt: int) -> str:
        for iteration in range(MAX_DEBUG_ITERATIONS):
            try:
                parse_cached(driver_src)
                return driver_src
            except VerilogSyntaxError as exc:
                reply = self._ask(
                    "syntax_fix",
                    prompts.syntax_fix_prompt("Verilog", str(exc),
                                              driver_src),
                    attempt=attempt, artifact=driver_src, scope="driver",
                    iteration=iteration)
                driver_src = extract_first_code_block(reply, "verilog")
        return driver_src

    def _debug_checker(self, checker_src: str, attempt: int) -> str:
        for iteration in range(MAX_DEBUG_ITERATIONS):
            try:
                compile(checker_src, "<checker>", "exec")
                return checker_src
            except SyntaxError as exc:
                reply = self._ask(
                    "syntax_fix",
                    prompts.syntax_fix_prompt("Python", str(exc),
                                              checker_src),
                    attempt=attempt, artifact=checker_src, scope="checker",
                    iteration=iteration)
                checker_src = extract_first_code_block(reply, "python")
        return checker_src

    # ------------------------------------------------------------------
    # Self-enhancement stage b: scenario-list checking
    # ------------------------------------------------------------------
    def _complete_scenarios(self, driver_src: str, listing, attempt: int,
                            ) -> str:
        planned = {index for index, _, _ in listing}
        if not planned:
            return driver_src
        present = {index for index, _ in parse_driver_scenarios(driver_src)}
        missing = sorted(planned - present)
        if not missing:
            return driver_src
        reply = self._ask(
            "scenario_fix", prompts.scenario_fix_prompt(missing,
                                                        driver_src),
            attempt=attempt, artifact=driver_src)
        return extract_first_code_block(reply, "verilog")
