"""Coverage-based self-validation (the paper's stated future work).

The RS-matrix validator judges whether a testbench's *expectations* are
right, but it is structurally blind to *coverage*: a testbench that
drives two vectors has two columns and nothing to flag.  Such weak
testbenches pass validation, pass the golden DUT (Eval1), and then fail
Eval2's mutant-agreement bar — the Eval1-vs-Eval2 gap of Table I.

The paper's conclusion names coverage-based self-validation as future
work; this module implements it.  Stimulus coverage is measured from the
driver's own dump records — no golden reference needed, keeping the
framework's no-human-content property:

- the **pattern axis**: distinct driven-input patterns, relative to the
  richness a typical plan for this interface would reach,
- the **check-point axis**: total number of check-points.

``CoverageValidator`` wraps the scenario validator and adds a
"testbench too weak" rejection, which the action agent turns into a
reboot like any other wrong verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..problems.model import TaskSpec
from .artifacts import HybridTestbench
from .simulation import Record
from .validator import ScenarioValidator, ValidationReport


@dataclass(frozen=True)
class CoverageReport:
    """Stimulus coverage of one driver run."""

    check_points: int
    distinct_patterns: int
    reference_patterns: int   # what a typical plan reaches on this task
    pattern_ratio: float      # distinct / min(reference, input-space)

    def meets(self, policy: "CoveragePolicy") -> bool:
        return (self.check_points >= policy.min_check_points
                and self.pattern_ratio >= policy.min_pattern_ratio)


@dataclass(frozen=True)
class CoveragePolicy:
    """Acceptance thresholds for stimulus coverage.

    The defaults separate shallow plans (a couple of short scenarios,
    pattern ratio well below 0.2) from ordinary plans whose stimulus
    jitter naturally repeats some patterns.
    """

    min_check_points: int = 5
    min_pattern_ratio: float = 0.22


def _input_space_size(task: TaskSpec, cap: int = 1 << 16) -> int:
    size = 1
    for port in task.driven_ports:
        size *= (1 << port.width)
        if size >= cap:
            return cap
    return size


def reference_pattern_count(task: TaskSpec) -> int:
    """Pattern richness of the task's canonical plan (computed once)."""
    plan = task.canonical_scenarios()
    patterns = {tuple(sorted(vector.items()))
                for scenario in plan for vector in scenario.vectors}
    return max(1, len(patterns))


def measure_coverage(task: TaskSpec,
                     records: Sequence[Record]) -> CoverageReport:
    """Measure stimulus coverage from dump records."""
    driven = [p.name for p in task.driven_ports]
    patterns = set()
    for record in records:
        patterns.add(tuple(record.values.get(name, "x")
                           for name in driven))
    reference = min(reference_pattern_count(task),
                    _input_space_size(task))
    ratio = len(patterns) / reference if reference else 1.0
    return CoverageReport(
        check_points=len(records),
        distinct_patterns=len(patterns),
        reference_patterns=reference,
        pattern_ratio=min(ratio, 1.0))


class CoverageValidator:
    """RS-matrix validation augmented with a stimulus-coverage gate.

    The verdict is ``correct`` only when the scenario validator accepts
    the testbench *and* its driver exercises enough distinct stimulus.
    Weak testbenches are reported with every scenario uncertain — the
    corrector cannot fix missing scenarios, so the agent's budget logic
    escalates to a reboot.
    """

    def __init__(self, inner: ScenarioValidator,
                 policy: CoveragePolicy = CoveragePolicy()):
        self.inner = inner
        self.policy = policy

    @property
    def task(self) -> TaskSpec:
        return self.inner.task

    def coverage_of(self, tb: HybridTestbench) -> CoverageReport | None:
        """Coverage of the TB's driver, measured on the golden-free path.

        The driver is simulated against the first syntax-clean judge RTL
        (any DUT exposes the same stimulus), reusing the validator's
        simulation cache.
        """
        for judge in self.inner.rtl_group:
            if not judge.syntax_ok:
                continue
            run = self.inner._judge_records(tb.driver_src, judge)
            if run.ok:
                return measure_coverage(self.task, run.records)
        return None

    def validate(self, tb: HybridTestbench) -> ValidationReport:
        report = self.inner.validate(tb)
        if not report.verdict:
            return report
        coverage = self.coverage_of(tb)
        if coverage is None or coverage.meets(self.policy):
            return report
        scenario_indexes = (report.matrix.scenario_indexes
                            if report.matrix is not None else ())
        return ValidationReport(
            verdict=False, wrong=(), correct=(),
            uncertain=tuple(scenario_indexes), matrix=report.matrix,
            note=(f"coverage too weak: {coverage.distinct_patterns} "
                  f"patterns / {coverage.check_points} check-points "
                  f"(ratio {coverage.pattern_ratio:.2f} < "
                  f"{self.policy.min_pattern_ratio})"))
