"""``repro.core`` — the CorrectBench pipeline.

Generator (AutoBench), baseline, scenario-based validator (RS matrix +
criteria), two-stage corrector, and the Algorithm-1 action agent.
"""

from .agent import (ActionEvent, CorrectBenchWorkflow, I_C_MAX, I_R_MAX,
                    WorkflowResult)
from .artifacts import (GenerationRecord, HybridTestbench,
                        MonolithicTestbench, RtlSample)
from .baseline import DirectBaseline
from .corrector import CorrectionOutcome, Corrector
from .coverage import (CoveragePolicy, CoverageReport, CoverageValidator,
                       measure_coverage)
from .generator import AutoBenchGenerator
from .rs_matrix import RSMatrix, RSRow, build_matrix
from .rtl_group import (DEFAULT_GROUP_SIZE, JudgeRtl, build_rtl_group)
from .validator import (CRITERIA, CRITERION_50, CRITERION_70,
                        CRITERION_100, Criterion, DEFAULT_CRITERION,
                        ScenarioValidator, ValidationReport, decide)

__all__ = [
    "ActionEvent",
    "AutoBenchGenerator",
    "CRITERIA",
    "CRITERION_100",
    "CRITERION_50",
    "CRITERION_70",
    "CorrectBenchWorkflow",
    "CorrectionOutcome",
    "Corrector",
    "CoveragePolicy",
    "CoverageReport",
    "CoverageValidator",
    "Criterion",
    "DEFAULT_CRITERION",
    "DEFAULT_GROUP_SIZE",
    "DirectBaseline",
    "GenerationRecord",
    "HybridTestbench",
    "I_C_MAX",
    "I_R_MAX",
    "JudgeRtl",
    "MonolithicTestbench",
    "RSMatrix",
    "RSRow",
    "RtlSample",
    "ScenarioValidator",
    "ValidationReport",
    "WorkflowResult",
    "build_matrix",
    "build_rtl_group",
    "decide",
    "measure_coverage",
]
