"""Prompt templates of every LLM stage.

The texts mirror the paper's described prompts (the corrector prompts
follow Fig. 5).  They are real prompt-engineering artifacts: the pipeline
renders them, sends them through the client, and pays their token cost —
which is how Fig. 6b's input-token accounting is reproduced.
"""

from __future__ import annotations

from typing import Sequence

SYSTEM_TESTBENCH = (
    "You are an expert digital-hardware verification engineer. You write "
    "Verilog testbenches and Python reference checkers for RTL designs "
    "described in natural language. Follow the requested output format "
    "exactly."
)

SYSTEM_RTL = (
    "You are an expert RTL designer. Implement the requested module in "
    "synthesisable Verilog. Reply with a single Verilog code block."
)


def scenario_prompt(spec: str) -> str:
    return (
        "Read the following RTL specification and list the test scenarios "
        "a thorough functional testbench should cover. Number every "
        "scenario and give each a short name in brackets followed by a "
        "one-line description.\n\n"
        f"[RTL SPEC]\n{spec}\n"
    )


def driver_prompt(spec: str, scenario_listing: str) -> str:
    return (
        "Write the Verilog driver module `tb` of a hybrid testbench for "
        "the DUT below. The driver must instantiate `top_module`, drive "
        "every listed test scenario, and after each check-point "
        "$fdisplay a line of the form\n"
        '    "scenario: %d, <input> = %d, ..., <output> = %d, ..."\n'
        'to the file "results.txt". Mark every scenario with a '
        "`// Scenario <n>: <description>` comment. Reply with one "
        "verilog code block.\n\n"
        f"[RTL SPEC]\n{spec}\n\n[TEST SCENARIOS]\n{scenario_listing}\n"
    )


def checker_prompt(spec: str, scenario_listing: str) -> str:
    return (
        "Write the Python checker core of the hybrid testbench: a class "
        "`RefModel` with a method `step(self, inputs: dict) -> dict` that "
        "computes the DUT's reference outputs for one check-point "
        "(sequential designs advance one clock cycle per call; reset is "
        "an ordinary input). Only produce the core code — the fixed "
        "file-parsing interface is appended by the framework. Reply with "
        "one python code block.\n\n"
        f"[RTL SPEC]\n{spec}\n\n[TEST SCENARIOS]\n{scenario_listing}\n"
    )


def syntax_fix_prompt(language: str, error: str, artifact: str) -> str:
    return (
        f"The following {language} code fails to compile:\n\n"
        f"Error: {error}\n\n"
        f"```{language.lower()}\n{artifact}```\n\n"
        "Fix the syntax error without changing the code's behaviour. "
        f"Reply with the complete corrected {language} code block.\n"
    )


def scenario_fix_prompt(missing: Sequence[int], artifact: str) -> str:
    return (
        "The driver below is missing the test scenarios "
        f"{list(missing)} from the agreed scenario list. Add the missing "
        "scenarios and reply with the complete corrected driver.\n\n"
        f"```verilog\n{artifact}```\n"
    )


def rtl_prompt(spec: str, sample_index: int) -> str:
    return (
        "Implement the module described below (attempt "
        f"{sample_index + 1}). Reply with one verilog code block "
        "containing the complete `top_module`.\n\n"
        f"[RTL SPEC]\n{spec}\n"
    )


def baseline_prompt(spec: str) -> str:
    return (
        "Write a complete self-checking Verilog testbench module `tb` "
        "for the DUT described below. Drive representative stimuli, "
        "compare every DUT output against the expected value, count "
        'mismatches, and $display "ALL_TESTS_PASSED" when every check '
        'succeeds or "TESTS_FAILED: %d" with the error count otherwise. '
        "Reply with one verilog code block.\n\n"
        f"[RTL SPEC]\n{spec}\n"
    )


def corrector_stage1_prompt(spec: str, scenario_text: str,
                            wrong: Sequence[int], correct: Sequence[int],
                            uncertain: Sequence[int], driver_src: str,
                            checker_src: str) -> str:
    """Stage 1 of the corrector: why / where / how (paper Fig. 5)."""
    return (
        "Your task is to correct the testbench according to the failing "
        "scenarios. The information we have is the RTL specification, "
        "the testbench code, and the validator's scenario report.\n"
        "ATTENTION: The Python code contains errors, and your target is "
        "to find them.\n\n"
        f"[RTL SPEC]\n{spec}\n\n"
        f"[SCENARIO DEFINITIONS]\n{scenario_text}\n\n"
        f"[SCENARIO CORRECTNESS]\nwrong: {list(wrong)}\n"
        f"correct: {list(correct)}\nuncertain: {list(uncertain)}\n\n"
        f"[TESTBENCH DRIVER]\n```verilog\n{driver_src}```\n\n"
        f"[TESTBENCH CHECKER]\n```python\n{checker_src}```\n\n"
        "Please reply with the following steps:\n"
        "1. Please analyze the reason of the failed scenarios.\n"
        "2. Please analyze which part of the python code is related to "
        "the failed test scenarios.\n"
        "3. Please tell me how to correct the wrong part (in natural "
        "language).\n"
    )


def corrector_stage2_prompt() -> str:
    """Stage 2 of the corrector: rewrite under formatting rules."""
    return (
        "Please correct the python code according to the following "
        "formatting rules: reply with exactly one python code block "
        "containing the complete corrected checker core (`class "
        "RefModel` with `step`). Only the core code is needed — the "
        "fixed interface is completed by the framework.\n"
    )


def corrector_stage2_retry_prompt() -> str:
    """Re-ask after a stage-2 reply without a usable code block."""
    return (
        "Your previous reply did not contain a usable python code "
        "block. Reply again, following the formatting rules exactly: "
        "one python code block with the complete corrected checker "
        "core (`class RefModel` with `step`), and nothing else.\n"
    )
