"""The action agent: Algorithm 1 of the paper.

Drives the validate / correct / reboot loop:

- validator says wrong and corrections remain (``I_C < I_C^max``) →
  **Correcting** via the two-stage corrector;
- validator says wrong and reboots remain (``I_R < I_R^max``) →
  **Rebooting**: regenerate the testbench from scratch and reset the
  correction counter;
- otherwise → **Pass** (either the validator is satisfied or every
  budget is exhausted and the system gives up with the last testbench).

Paper constants: ``I_C^max = 3``, ``I_R^max = 10``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..llm.base import LLMClient, MeteredClient, UsageMeter
from ..problems.model import TaskSpec
from .artifacts import HybridTestbench
from .corrector import Corrector
from .generator import AutoBenchGenerator
from .trace import (TraceSession, fault_fingerprint, resolve_trace_sink,
                    use_trace_session)
from .validator import (DEFAULT_CRITERION, Criterion, ScenarioValidator,
                        ValidationReport)

I_C_MAX = 3
I_R_MAX = 10


@dataclass(frozen=True)
class ActionEvent:
    """One step of the agent's history."""

    action: str  # "Correcting" | "Rebooting" | "Pass"
    generation_index: int
    correction_index: int
    validator_verdict: bool
    wrong_scenarios: tuple[int, ...] = ()


@dataclass
class WorkflowResult:
    """Outcome of one CorrectBench run on one task."""

    task_id: str
    final_tb: HybridTestbench
    validated: bool              # did the validator accept the final TB?
    gave_up: bool                # budgets exhausted without acceptance
    corrections: int = 0         # total corrector invocations
    reboots: int = 0
    history: tuple[ActionEvent, ...] = ()
    final_report: ValidationReport | None = None
    meter: UsageMeter | None = None

    @property
    def final_from_corrector(self) -> bool:
        return self.final_tb.origin == "corrector"

    @property
    def took_any_action(self) -> bool:
        """True when the raw first testbench was not the one accepted."""
        return self.corrections > 0 or self.reboots > 0


@dataclass
class CorrectBenchWorkflow:
    """CorrectBench end-to-end for one task (Fig. 1 / Algorithm 1).

    ``trace_sink`` overrides the context-resolved sink (see
    :func:`repro.core.trace.resolve_trace_sink`); ``trace_label``
    distinguishes trace files when several sessions run the same task.
    ``report_filter`` sits between the validator and Algorithm 1: it
    receives ``(report, round_index)`` and returns the report the agent
    acts on.  Recovery scenario packs use it to feed the agent
    misleading verdicts for a bounded window of rounds
    (:mod:`repro.eval.scenarios`); once the window ends the real
    reports flow again, so acceptance is ultimately decided on honest
    feedback.
    """

    client: LLMClient | MeteredClient
    task: TaskSpec
    criterion: Criterion = DEFAULT_CRITERION
    ic_max: int = I_C_MAX
    ir_max: int = I_R_MAX
    group_size: int = 20
    history: list[ActionEvent] = field(default_factory=list)
    trace_sink: object | None = None
    trace_label: str = ""
    report_filter: Callable[[ValidationReport, int],
                            ValidationReport] | None = None

    def run(self) -> WorkflowResult:
        sink = self.trace_sink
        if sink is None:
            sink = resolve_trace_sink(self.task.task_id,
                                      self.trace_label)
        if sink is None:
            return self._run(None)
        session = TraceSession(sink)
        session.record_header(
            task_id=self.task.task_id, model=self.client.name,
            seed=getattr(getattr(self.client, "inner", self.client),
                         "seed", None),
            criterion=self.criterion.name, ic_max=self.ic_max,
            ir_max=self.ir_max, group_size=self.group_size)
        try:
            with use_trace_session(session):
                result = self._run(session)
            session.record_result(result)
            return result
        finally:
            session.close()

    def _run(self, session) -> WorkflowResult:
        generator = AutoBenchGenerator(self.client, self.task)
        validator = ScenarioValidator(self.client, self.task,
                                      self.criterion, self.group_size)
        corrector = Corrector(self.client)

        i_c = 0
        i_r = 0
        corrections = 0
        rounds = 0
        testbench = generator.generate(attempt=0)

        while True:
            report = validator.validate(testbench)
            rounds += 1
            if self.report_filter is not None:
                report = self.report_filter(report, rounds)
            if session is not None:
                session.record_validation(
                    testbench, report,
                    fault_fingerprint(self.client,
                                      testbench.checker_src))
            if not report.verdict and i_c < self.ic_max:
                action = "Correcting"
                i_c += 1
                corrections += 1
                outcome = corrector.correct(self.task, testbench, report,
                                            correction_round=corrections)
                self.history.append(ActionEvent(
                    action, testbench.generation_index,
                    testbench.correction_index, report.verdict,
                    report.wrong))
                if session is not None:
                    session.record_action(action, testbench, report)
                testbench = outcome.testbench
                continue
            if not report.verdict and i_r < self.ir_max:
                action = "Rebooting"
                i_r += 1
                i_c = 0  # a fresh boot gets a fresh correction budget
                self.history.append(ActionEvent(
                    action, testbench.generation_index,
                    testbench.correction_index, report.verdict,
                    report.wrong))
                if session is not None:
                    session.record_action(action, testbench, report)
                testbench = generator.generate(attempt=i_r)
                continue
            self.history.append(ActionEvent(
                "Pass", testbench.generation_index,
                testbench.correction_index, report.verdict, report.wrong))
            if session is not None:
                session.record_action("Pass", testbench, report)
            meter = (self.client.meter
                     if isinstance(self.client, MeteredClient) else None)
            return WorkflowResult(
                task_id=self.task.task_id, final_tb=testbench,
                validated=report.verdict,
                gave_up=not report.verdict,
                corrections=corrections, reboots=i_r,
                history=tuple(self.history), final_report=report,
                meter=meter)
