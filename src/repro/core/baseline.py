"""The direct-generation baseline: one-shot testbench from the LLM.

The paper's weakest comparator simply asks the model for a complete
testbench — no scenario decomposition, no self-enhancement, no checking.
"""

from __future__ import annotations

from ..llm.base import GenerationIntent, LLMClient, MeteredClient
from ..llm.conversation import single_turn
from ..problems.model import TaskSpec
from ..util import extract_first_code_block
from . import prompts
from .artifacts import MonolithicTestbench


class DirectBaseline:
    """Directly asks the LLM for a monolithic self-checking testbench."""

    def __init__(self, client: LLMClient | MeteredClient, task: TaskSpec):
        self.client = client
        self.task = task

    def generate(self, attempt: int = 0) -> MonolithicTestbench:
        reply = single_turn(
            self.client, prompts.SYSTEM_TESTBENCH,
            prompts.baseline_prompt(self.task.spec_text),
            GenerationIntent("baseline_tb", self.task.task_id,
                             {"task": self.task, "attempt": attempt}))
        source = extract_first_code_block(reply, "verilog")
        return MonolithicTestbench(task_id=self.task.task_id,
                                   source=source)
