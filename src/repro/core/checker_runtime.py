"""The fixed checker interface ("completed by a Python script").

Executes a generated checker core (`RefModel`) over the driver's dump
records and produces the per-scenario pass/fail report the validator and
AutoEval consume.  State carries across scenarios in dump order, exactly
like the DUT's state during the driver run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..problems.model import CheckerModelError, Port, load_ref_model
from .simulation import Record

CHECKER_SYNTAX = "checker_syntax"
CHECKER_RUNTIME = "checker_runtime"
CHECK_OK = "ok"


@dataclass
class ScenarioVerdict:
    scenario: int
    passed: bool
    mismatches: list[str] = field(default_factory=list)


@dataclass
class CheckReport:
    """Outcome of checking one dump against one checker core."""

    status: str  # CHECK_OK / CHECKER_SYNTAX / CHECKER_RUNTIME
    verdicts: dict[int, ScenarioVerdict] = field(default_factory=dict)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == CHECK_OK

    @property
    def all_passed(self) -> bool:
        return self.ok and all(v.passed for v in self.verdicts.values())

    @property
    def failed_scenarios(self) -> tuple[int, ...]:
        return tuple(sorted(s for s, v in self.verdicts.items()
                            if not v.passed))

    @property
    def passed_scenarios(self) -> tuple[int, ...]:
        return tuple(sorted(s for s, v in self.verdicts.items()
                            if v.passed))


def checker_compiles(checker_src: str) -> bool:
    """Eval0-side syntax check of the Python half of the testbench."""
    try:
        compile(checker_src, "<checker>", "exec")
    except SyntaxError:
        return False
    return True


def run_checker(checker_src: str, ports: Sequence[Port],
                records: Sequence[Record]) -> CheckReport:
    """Run a checker core over dump records.

    ``ports`` is the DUT interface (from the specification); it tells the
    fixed interface which dump fields are driven inputs (fed to
    ``RefModel.step``) and which are DUT outputs (compared against the
    model's return values).
    """
    driven = [p for p in ports
              if p.direction == "input" and p.role != "clock"]
    outputs = [p for p in ports if p.direction == "output"]

    try:
        model = load_ref_model(checker_src)
    except SyntaxError as exc:
        return CheckReport(CHECKER_SYNTAX, detail=str(exc))
    except CheckerModelError as exc:
        return CheckReport(CHECKER_RUNTIME, detail=str(exc))
    except Exception as exc:  # executing generated code
        return CheckReport(CHECKER_RUNTIME, detail=repr(exc))

    report = CheckReport(CHECK_OK)
    for record in records:
        verdict = report.verdicts.setdefault(
            record.scenario, ScenarioVerdict(record.scenario, True))
        inputs = {}
        for port in driven:
            raw = record.values.get(port.name, "x")
            inputs[port.name] = 0 if raw == "x" else int(raw) & port.mask
        try:
            expected = model.step(inputs)
        except Exception as exc:
            return CheckReport(CHECKER_RUNTIME,
                               detail=f"RefModel.step raised {exc!r}")
        for port in outputs:
            raw = record.values.get(port.name, "x")
            try:
                want = int(expected[port.name]) & port.mask
            except Exception as exc:
                return CheckReport(
                    CHECKER_RUNTIME,
                    detail=f"RefModel returned bad outputs: {exc!r}")
            if raw == "x" or (int(raw) & port.mask) != want:
                verdict.passed = False
                verdict.mismatches.append(
                    f"scenario {record.scenario}: {port.name} = {raw}, "
                    f"expected {want}")
    return report
