"""The validator's judge group: N_R imperfect RTL implementations.

Section III-B of the paper: the LLM generates ``N_R = 20`` RTL designs
from the specification.  Rows of syntax-broken designs are discarded, and
"if more than half of the RTL designs contain syntax errors, the system
will regenerate the corresponding number of RTL designs until at least
half of them are free from syntax errors".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.base import GenerationIntent, LLMClient, MeteredClient
from ..llm.conversation import single_turn
from ..problems.model import TaskSpec
from ..util import extract_first_code_block
from . import prompts
from .simulation import syntax_ok

DEFAULT_GROUP_SIZE = 20
MAX_REGENERATION_ROUNDS = 5


@dataclass(frozen=True)
class JudgeRtl:
    """One imperfect-RTL sample with its syntax status."""

    source: str
    sample_index: int
    syntax_ok: bool


def build_rtl_group(client: LLMClient | MeteredClient, task: TaskSpec,
                    group_size: int = DEFAULT_GROUP_SIZE,
                    ) -> tuple[JudgeRtl, ...]:
    """Generate the judge group, applying the paper's regeneration rule."""
    samples: list[JudgeRtl] = []

    def request_one(index: int, nonce: int) -> JudgeRtl:
        reply = single_turn(
            client, prompts.SYSTEM_RTL,
            prompts.rtl_prompt(task.spec_text, index),
            GenerationIntent("rtl", task.task_id,
                             {"task": task, "sample_index": index,
                              "group_nonce": nonce}))
        source = extract_first_code_block(reply, "verilog")
        return JudgeRtl(source, index, syntax_ok(source))

    samples = [request_one(i, 0) for i in range(group_size)]
    nonce = 0
    while (sum(1 for s in samples if s.syntax_ok) < group_size / 2
           and nonce < MAX_REGENERATION_ROUNDS):
        nonce += 1
        samples = [s if s.syntax_ok else request_one(s.sample_index, nonce)
                   for s in samples]
    return tuple(samples)
