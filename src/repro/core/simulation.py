"""Simulation glue: run drivers/testbenches against DUT sources.

This module replaces the ``iverilog + vvp`` invocation of the original
system with the in-process :mod:`repro.hdl` simulator, and layers design
reuse on top of it:

- **parse cache** — text-keyed (:func:`parse_cached`); the validator
  simulates the same driver against 20 RTL samples and AutoEval runs the
  same testbench against 10 mutants.
- **elaboration cache** — :func:`design_template` keys a fully
  elaborated + compiled design by ``(source_text, top)``.  The cached
  :class:`DesignTemplate` owns the design *structure* (signals, process
  closures); each run stamps out fresh runtime state (signal values,
  memory words, scheduler queues) before simulating, so repeated runs of
  the same design pay parse/elaborate/compile exactly once.
- **batched execution** — :func:`run_driver_batch` /
  :func:`run_monolithic_batch` fan one shared testbench across many DUT
  variants, deduplicating identical sources and optionally spreading
  the work across a process pool.

The execution engine (``compiled`` closures vs the reference
``interpret`` walker) is selected per call, per process via
:func:`set_default_engine`, or via the ``REPRO_SIM_ENGINE`` environment
variable.
"""

from __future__ import annotations

import re
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache

from ..hdl import ast as hdl_ast
from ..hdl.elaborate import Design, elaborate
from ..hdl.errors import (ElaborationError, HdlError, SimulationError,
                          SimulationLimit, VerilogSyntaxError)
from ..hdl.parser import parse_source_cached
from ..hdl.simulator import (ENGINE_COMPILED, ENGINE_INTERPRET, ENGINES,
                             SimulationResult, Simulator,
                             get_default_engine, set_default_engine)
from ..codegen.driver import DUMP_FILE

# Failure taxonomy used throughout evaluation:
SYNTAX = "syntax"          # does not parse (Eval0 fails)
ELABORATION = "elaboration"  # parses but does not elaborate
RUNTIME = "runtime"        # simulation crashed / no dump produced
OK = "ok"

_SIM_MAX_TIME = 2_000_000
_SIM_MAX_STMTS = 4_000_000


# Engine selection lives in repro.hdl.simulator (the single source of
# truth); get_default_engine / set_default_engine are re-exported above
# for callers that configure simulation at this layer (campaigns, CLI).


# ----------------------------------------------------------------------
# Parse + elaboration caches
# ----------------------------------------------------------------------
def parse_cached(source: str) -> hdl_ast.SourceFile:
    """Parse with a text-keyed cache; raises VerilogSyntaxError."""
    return parse_source_cached(source)


def syntax_ok(source: str) -> bool:
    try:
        parse_cached(source)
    except VerilogSyntaxError:
        return False
    return True


class DesignTemplate:
    """A cached, compiled design plus the recipe for fresh run state.

    Elaboration produces mutable runtime objects (signal values, memory
    words) embedded in the design structure.  The template snapshots
    their post-elaboration state once; :meth:`run` restores that
    snapshot — and clears any event waiters left by a previous run —
    before simulating, so every run starts from an identical universe
    while sharing the parsed AST, the elaborated structure, and the
    compiled process closures.

    A lock serializes runs of one template: the design's runtime state
    is singular, so concurrent in-process runs must take turns (use the
    process-pool batch APIs for true parallelism).
    """

    __slots__ = ("design", "top", "_signal_init", "_memory_init", "_lock")

    def __init__(self, design: Design):
        self.design = design
        self.top = design.top
        self._signal_init = [(sig, sig.value)
                             for sig in design.signals.values()]
        self._memory_init = [(mem, list(mem.words))
                             for mem in design.memories.values()]
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Restore post-elaboration values and clear scheduler residue."""
        for sig, value in self._signal_init:
            sig.value = value
            if sig.waiters:
                sig.waiters.clear()
        for mem, words in self._memory_init:
            mem.words[:] = words
            if mem.waiters:
                mem.waiters.clear()

    def run(self, max_time: int = _SIM_MAX_TIME,
            max_stmts: int = _SIM_MAX_STMTS, seed: int = 0,
            engine: str | None = None) -> SimulationResult:
        """Reset state and simulate.

        Note: the returned ``SimulationResult.design`` references the
        *shared* design — snapshot any final signal values you need
        before the next run of the same template.
        """
        with self._lock:
            self.reset()
            try:
                return Simulator(self.design, max_time=max_time,
                                 max_stmts=max_stmts, seed=seed,
                                 engine=engine or get_default_engine()).run()
            finally:
                # The simulator rebinds the design's runtime hooks to
                # itself; restore the defaults so this cached template
                # doesn't pin the finished Simulator (and its stdout /
                # dump buffers / generator frames) in memory.
                design = self.design
                design.runtime_time = lambda: 0
                design.runtime_random = lambda: 0
                design.runtime_fopen = lambda name: 0


@lru_cache(maxsize=256)
def design_template(source_text: str, top: str) -> DesignTemplate:
    """Elaboration cache: ``(source_text, top)`` -> compiled template.

    Failures (syntax or elaboration errors) are not cached and re-raise
    on every call.
    """
    return DesignTemplate(elaborate(parse_cached(source_text), top))


@lru_cache(maxsize=256)
def _pair_template(dut_src: str, tb_src: str, top: str) -> DesignTemplate:
    """Elaboration cache for (DUT, testbench) pairs.

    Merges the two separately-cached ASTs at the module-tuple level (no
    re-parse of concatenated text).  DUT modules come first so testbench
    modules shadow same-named ones, exactly like the pre-cache merge.
    """
    dut_ast = parse_cached(dut_src)
    tb_ast = parse_cached(tb_src)
    merged = hdl_ast.SourceFile(tuple(dut_ast.modules)
                                + tuple(tb_ast.modules))
    return DesignTemplate(elaborate(merged, top))


def clear_simulation_caches() -> None:
    """Drop the parse and elaboration caches (benchmark cold starts)."""
    design_template.cache_clear()
    _pair_template.cache_clear()
    parse_source_cached.cache_clear()


def simulation_cache_stats() -> dict:
    """Hit/miss counters for the caching layers (telemetry)."""
    parse_info = parse_source_cached.cache_info()
    design_info = design_template.cache_info()
    pair_info = _pair_template.cache_info()
    return {
        "parse": {"hits": parse_info.hits, "misses": parse_info.misses,
                  "size": parse_info.currsize},
        "design": {"hits": design_info.hits, "misses": design_info.misses,
                   "size": design_info.currsize},
        "pair": {"hits": pair_info.hits, "misses": pair_info.misses,
                 "size": pair_info.currsize},
    }


@dataclass(frozen=True)
class Record:
    """One parsed dump line: a check-point of one scenario."""

    scenario: int
    values: dict  # signal name -> decimal string ("x" when undefined)


@dataclass
class DriverRun:
    """Outcome of simulating driver + DUT."""

    status: str  # OK / SYNTAX / ELABORATION / RUNTIME
    records: list[Record] = field(default_factory=list)
    detail: str = ""
    stdout: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == OK


_RECORD_RE = re.compile(r"scenario:\s*(\d+)")
_FIELD_RE = re.compile(r"(\w+)\s*=\s*(x|-?\d+)")


def parse_dump(lines: list[str]) -> list[Record]:
    """Parse ``scenario: k, a = 1, ...`` dump lines into records."""
    records = []
    for line in lines:
        match = _RECORD_RE.search(line)
        if not match:
            continue
        values = {name: value for name, value in _FIELD_RE.findall(line)}
        records.append(Record(scenario=int(match.group(1)), values=values))
    return records


def run_driver(driver_src: str, dut_src: str,
               engine: str | None = None) -> DriverRun:
    """Simulate the hybrid-TB driver against a DUT, collect the dump."""
    try:
        parse_cached(driver_src)
    except VerilogSyntaxError as exc:
        return DriverRun(SYNTAX, detail=f"driver: {exc}")
    try:
        parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return DriverRun(SYNTAX, detail=f"dut: {exc}")

    try:
        template = _pair_template(dut_src, driver_src, "tb")
    except VerilogSyntaxError as exc:  # pragma: no cover - defensive
        return DriverRun(SYNTAX, detail=str(exc))
    except ElaborationError as exc:
        return DriverRun(ELABORATION, detail=str(exc))
    try:
        result = template.run(engine=engine)
    except (SimulationError, SimulationLimit) as exc:
        return DriverRun(RUNTIME, detail=str(exc))
    except HdlError as exc:  # late elaboration-class errors: still runtime
        return DriverRun(RUNTIME, detail=str(exc))
    except RecursionError:  # pragma: no cover - defensive
        return DriverRun(RUNTIME, detail="recursion limit")

    if not result.finished:
        return DriverRun(RUNTIME, detail="simulation ended without $finish")
    lines = result.files.get(DUMP_FILE, [])
    records = parse_dump(lines)
    if not records:
        return DriverRun(RUNTIME, detail="no check-points in dump",
                         stdout=result.stdout)
    return DriverRun(OK, records=records, stdout=result.stdout)


@dataclass
class MonolithicRun:
    """Outcome of simulating a self-checking (baseline) testbench."""

    status: str
    verdict: bool | None = None  # True = TB printed pass
    detail: str = ""


def run_monolithic(tb_src: str, dut_src: str,
                   engine: str | None = None) -> MonolithicRun:
    """Simulate a baseline testbench; parse its printed verdict."""
    from ..codegen.baseline import baseline_verdict

    try:
        parse_cached(tb_src)
    except VerilogSyntaxError as exc:
        return MonolithicRun(SYNTAX, detail=f"tb: {exc}")
    try:
        parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return MonolithicRun(SYNTAX, detail=f"dut: {exc}")
    try:
        template = _pair_template(dut_src, tb_src, "tb")
    except VerilogSyntaxError as exc:  # pragma: no cover - defensive
        return MonolithicRun(SYNTAX, detail=str(exc))
    except ElaborationError as exc:
        return MonolithicRun(ELABORATION, detail=str(exc))
    try:
        result = template.run(engine=engine)
    except (SimulationError, SimulationLimit) as exc:
        return MonolithicRun(RUNTIME, detail=str(exc))
    except HdlError as exc:
        return MonolithicRun(RUNTIME, detail=str(exc))
    except RecursionError:  # pragma: no cover - defensive
        return MonolithicRun(RUNTIME, detail="recursion limit")
    if not result.finished:
        return MonolithicRun(RUNTIME, detail="no $finish")
    verdict = baseline_verdict(result.stdout)
    if verdict is None:
        return MonolithicRun(RUNTIME, detail="testbench printed no verdict")
    return MonolithicRun(OK, verdict=verdict)


def dut_compiles(dut_src: str) -> tuple[bool, str]:
    """Check a bare DUT for syntax + elaboration errors (Eval0-style)."""
    try:
        source = parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return False, f"{SYNTAX}: {exc}"
    try:
        elaborate(source, "top_module")
    except ElaborationError as exc:
        return False, f"{ELABORATION}: {exc}"
    except HdlError as exc:  # pragma: no cover - defensive
        return False, str(exc)
    return True, ""


# ----------------------------------------------------------------------
# Batched execution
# ----------------------------------------------------------------------
def _driver_batch_worker(item: tuple) -> DriverRun:
    driver_src, dut_src, engine = item
    return run_driver(driver_src, dut_src, engine=engine)


def _monolithic_batch_worker(item: tuple) -> MonolithicRun:
    tb_src, dut_src, engine = item
    return run_monolithic(tb_src, dut_src, engine=engine)


def _run_batch(worker, shared_src: str, dut_srcs, jobs: int,
               engine: str | None) -> list:
    """Shared fan-out: dedup identical DUTs, then run each unique pair.

    The shared testbench text is parsed once (cache) and each unique
    (testbench, DUT) design is elaborated + compiled once (template
    cache), so a batch amortizes every per-design cost across the runs.
    With ``jobs > 1`` unique pairs spread over a process pool; each
    worker process builds its own caches, which the pool reuses across
    items.
    """
    # Resolve the engine now: pool workers have their own process-wide
    # default, so an unresolved None would ignore a set_default_engine()
    # made in this (the parent) process.
    engine = engine or get_default_engine()
    dut_list = list(dut_srcs)
    order: list[str] = []
    seen = set()
    for dut in dut_list:
        if dut not in seen:
            seen.add(dut)
            order.append(dut)

    if jobs > 1 and len(order) > 1:
        items = [(shared_src, dut, engine) for dut in order]
        with ProcessPoolExecutor(max_workers=min(jobs, len(order))) as pool:
            unique_results = list(pool.map(worker, items))
    else:
        unique_results = [worker((shared_src, dut, engine))
                          for dut in order]

    by_src = dict(zip(order, unique_results))
    return [by_src[dut] for dut in dut_list]


def run_driver_batch(driver_src: str, dut_srcs, jobs: int = 1,
                     engine: str | None = None) -> list[DriverRun]:
    """Run one hybrid-TB driver against many DUT variants.

    This is the validator/AutoEval hot path: the driver is compiled
    once, identical DUTs are simulated once, and ``jobs > 1`` fans the
    unique runs across a process pool.
    """
    return _run_batch(_driver_batch_worker, driver_src, dut_srcs, jobs,
                      engine)


def run_monolithic_batch(tb_src: str, dut_srcs, jobs: int = 1,
                         engine: str | None = None) -> list[MonolithicRun]:
    """Run one self-checking testbench against many DUT variants."""
    return _run_batch(_monolithic_batch_worker, tb_src, dut_srcs, jobs,
                      engine)
