"""Simulation glue: run drivers/testbenches against DUT sources.

This module replaces the ``iverilog + vvp`` invocation of the original
system with the in-process :mod:`repro.hdl` simulator.  Parsing is cached
per source text (the validator simulates the same driver against 20 RTL
samples, and AutoEval runs the same testbench against 10 mutants).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from functools import lru_cache

from ..hdl import ast as hdl_ast
from ..hdl.elaborate import elaborate
from ..hdl.errors import (ElaborationError, HdlError, SimulationError,
                          SimulationLimit, VerilogSyntaxError)
from ..hdl.parser import parse_source
from ..hdl.simulator import Simulator
from ..codegen.driver import DUMP_FILE

# Failure taxonomy used throughout evaluation:
SYNTAX = "syntax"          # does not parse (Eval0 fails)
ELABORATION = "elaboration"  # parses but does not elaborate
RUNTIME = "runtime"        # simulation crashed / no dump produced
OK = "ok"

_SIM_MAX_TIME = 2_000_000
_SIM_MAX_STMTS = 4_000_000


@lru_cache(maxsize=4096)
def parse_cached(source: str) -> hdl_ast.SourceFile:
    """Parse with a text-keyed cache; raises VerilogSyntaxError."""
    return parse_source(source)


def syntax_ok(source: str) -> bool:
    try:
        parse_cached(source)
    except VerilogSyntaxError:
        return False
    return True


@dataclass(frozen=True)
class Record:
    """One parsed dump line: a check-point of one scenario."""

    scenario: int
    values: dict  # signal name -> decimal string ("x" when undefined)


@dataclass
class DriverRun:
    """Outcome of simulating driver + DUT."""

    status: str  # OK / SYNTAX / ELABORATION / RUNTIME
    records: list[Record] = field(default_factory=list)
    detail: str = ""
    stdout: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == OK


_RECORD_RE = re.compile(r"scenario:\s*(\d+)")
_FIELD_RE = re.compile(r"(\w+)\s*=\s*(x|-?\d+)")


def parse_dump(lines: list[str]) -> list[Record]:
    """Parse ``scenario: k, a = 1, ...`` dump lines into records."""
    records = []
    for line in lines:
        match = _RECORD_RE.search(line)
        if not match:
            continue
        values = {name: value for name, value in _FIELD_RE.findall(line)}
        records.append(Record(scenario=int(match.group(1)), values=values))
    return records


def run_driver(driver_src: str, dut_src: str) -> DriverRun:
    """Simulate the hybrid-TB driver against a DUT, collect the dump."""
    try:
        tb_ast = parse_cached(driver_src)
    except VerilogSyntaxError as exc:
        return DriverRun(SYNTAX, detail=f"driver: {exc}")
    try:
        dut_ast = parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return DriverRun(SYNTAX, detail=f"dut: {exc}")

    merged = hdl_ast.SourceFile(tuple(dut_ast.modules) + tuple(tb_ast.modules))
    try:
        design = elaborate(merged, "tb")
    except ElaborationError as exc:
        return DriverRun(ELABORATION, detail=str(exc))
    try:
        result = Simulator(design, max_time=_SIM_MAX_TIME,
                           max_stmts=_SIM_MAX_STMTS).run()
    except (SimulationError, SimulationLimit) as exc:
        return DriverRun(RUNTIME, detail=str(exc))
    except RecursionError:  # pragma: no cover - defensive
        return DriverRun(RUNTIME, detail="recursion limit")

    if not result.finished:
        return DriverRun(RUNTIME, detail="simulation ended without $finish")
    lines = result.files.get(DUMP_FILE, [])
    records = parse_dump(lines)
    if not records:
        return DriverRun(RUNTIME, detail="no check-points in dump",
                         stdout=result.stdout)
    return DriverRun(OK, records=records, stdout=result.stdout)


@dataclass
class MonolithicRun:
    """Outcome of simulating a self-checking (baseline) testbench."""

    status: str
    verdict: bool | None = None  # True = TB printed pass
    detail: str = ""


def run_monolithic(tb_src: str, dut_src: str) -> MonolithicRun:
    """Simulate a baseline testbench; parse its printed verdict."""
    from ..codegen.baseline import baseline_verdict

    try:
        tb_ast = parse_cached(tb_src)
    except VerilogSyntaxError as exc:
        return MonolithicRun(SYNTAX, detail=f"tb: {exc}")
    try:
        dut_ast = parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return MonolithicRun(SYNTAX, detail=f"dut: {exc}")
    merged = hdl_ast.SourceFile(tuple(dut_ast.modules) + tuple(tb_ast.modules))
    try:
        design = elaborate(merged, "tb")
    except ElaborationError as exc:
        return MonolithicRun(ELABORATION, detail=str(exc))
    try:
        result = Simulator(design, max_time=_SIM_MAX_TIME,
                           max_stmts=_SIM_MAX_STMTS).run()
    except (SimulationError, SimulationLimit) as exc:
        return MonolithicRun(RUNTIME, detail=str(exc))
    if not result.finished:
        return MonolithicRun(RUNTIME, detail="no $finish")
    verdict = baseline_verdict(result.stdout)
    if verdict is None:
        return MonolithicRun(RUNTIME, detail="testbench printed no verdict")
    return MonolithicRun(OK, verdict=verdict)


def dut_compiles(dut_src: str) -> tuple[bool, str]:
    """Check a bare DUT for syntax + elaboration errors (Eval0-style)."""
    try:
        source = parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return False, f"{SYNTAX}: {exc}"
    try:
        elaborate(source, "top_module")
    except ElaborationError as exc:
        return False, f"{ELABORATION}: {exc}"
    except HdlError as exc:  # pragma: no cover - defensive
        return False, str(exc)
    return True, ""
