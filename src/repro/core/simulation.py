"""Simulation glue: run drivers/testbenches against DUT sources.

This module replaces the ``iverilog + vvp`` invocation of the original
system with the in-process :mod:`repro.hdl` simulator, and layers design
reuse on top of it:

- **parse cache** — text-keyed (:func:`parse_cached`); the validator
  simulates the same driver against 20 RTL samples and AutoEval runs the
  same testbench against 10 mutants.  A text-keyed *tokenize* cache sits
  underneath (:func:`repro.hdl.lexer.tokenize_cached`): mutants that
  only perturb a few tokens still re-lex (quickly, through the
  master-regex tokenizer), but repeated sources — including sources
  that lex and then fail to *parse* — skip the lexer entirely.
- **elaboration cache** — :func:`design_template` keys a fully
  elaborated + compiled design by ``(source_text, top)``.  The cached
  :class:`DesignTemplate` owns the design *structure* (signals, process
  closures); each run stamps out fresh runtime state (signal values,
  memory words, scheduler queues) before simulating, so repeated runs of
  the same design pay parse/elaborate/compile exactly once.  Failing
  ``(source, top)`` pairs are cached too: non-elaborating mutants
  re-raise their recorded error instead of re-running the front end.
- **batched execution** — :func:`run_driver_batch` /
  :func:`run_monolithic_batch` fan one shared testbench across many DUT
  variants, deduplicating identical sources and optionally spreading
  the work across the *persistent* worker pool (:func:`get_sim_pool`):
  created lazily, reused by every batch and campaign in the process,
  torn down atexit.

One layer below, :mod:`repro.hdl.compile` shares slot-indexed compiled
programs across elaborations, so even a *fresh* (driver, DUT) pairing
only re-binds the driver's programs instead of recompiling them.

The execution engine (``compiled`` closures vs the reference
``interpret`` walker), the simulation limits and the batch worker count
resolve through the active :class:`~repro.hdl.context.SimContext`
(explicit argument > ``use_context`` activation > env-seeded root
context); batch APIs ship the resolved context to pool workers as part
of each work item, so a worker never falls back to its own process
defaults.  All cache layers register with
:data:`repro.core.caches.caches`; the ``clear_*`` / ``*_stats``
helpers below delegate to that facade.

Pool workers start *warm*: forked workers inherit the parent's caches
through memory, and spawn/forkserver workers (where compiled closures
cannot be pickled across) import a
:class:`~repro.core.caches.CacheSnapshot` — token streams, ASTs,
template signatures, cached failures — shipped through the executor
initializer, re-deriving the closure layers locally before their first
work item.  ``SimContext.start_method`` / ``warm_start`` select the
behaviour; :func:`sim_pool_info` reports the live pool's state, and the
``pool_warm_start`` bench gates the win.
"""

from __future__ import annotations

import atexit
import multiprocessing
import pickle
import re
import sys
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..hdl import ast as hdl_ast
from ..hdl.compile import (begin_warm_start, clear_program_cache,
                           end_warm_start, program_cache_stats)
from ..hdl.context import (START_METHOD_DEFAULT, SimContext,
                           current_context, use_context)
from ..hdl.elaborate import Design, elaborate
from ..hdl.errors import (ElaborationError, HdlError, SimulationError,
                          SimulationLimit, VerilogSyntaxError)
from ..hdl.lexer import (clear_tokenize_cache, export_tokenize_cache,
                         import_tokenize_cache, tokenize_cache_stats)
from ..hdl.parser import (clear_parse_cache, export_parse_cache,
                          import_parse_cache, parse_cache_stats,
                          parse_source_cached)
from ..hdl.simulator import SimulationResult, Simulator
# Engine selection lives in repro.hdl.context (the single source of
# truth); these are re-exported (redundant-alias form) for callers that
# configure simulation at this layer (campaigns, CLI, benchmarks).
from ..hdl.context import ENGINE_COMPILED as ENGINE_COMPILED
from ..hdl.context import ENGINE_INTERPRET as ENGINE_INTERPRET
from ..hdl.context import ENGINES as ENGINES
from ..hdl.context import MUTANT_ENGINES as MUTANT_ENGINES
from ..hdl.context import MUTANT_LOCKSTEP as MUTANT_LOCKSTEP
from ..hdl.context import MUTANT_PER_MUTANT as MUTANT_PER_MUTANT
from ..hdl import lockstep as lockstep_mod
from ..hdl.lockstep import (LockstepUnsupported, build_union,
                            clear_lockstep_caches, lockstep_cache_stats)
from ..hdl.simulator import get_default_engine as get_default_engine
from ..hdl.simulator import set_default_engine as set_default_engine
from ..codegen.driver import DUMP_FILE
from .caches import CacheSnapshot, ScopedLruCache, caches, use_task_scope

# Failure taxonomy used throughout evaluation:
SYNTAX = "syntax"          # does not parse (Eval0 fails)
ELABORATION = "elaboration"  # parses but does not elaborate
RUNTIME = "runtime"        # simulation crashed / no dump produced
OK = "ok"


# ----------------------------------------------------------------------
# Parse + elaboration caches
# ----------------------------------------------------------------------
def parse_cached(source: str) -> hdl_ast.SourceFile:
    """Parse with a text-keyed cache; raises VerilogSyntaxError."""
    return parse_source_cached(source)


def syntax_ok(source: str) -> bool:
    """Does ``source`` parse?  (Eval0's syntax half.)

    >>> syntax_ok("module m; endmodule")
    True
    >>> syntax_ok("module m(; endmodule")
    False
    """
    try:
        parse_cached(source)
    except VerilogSyntaxError:
        return False
    return True


class DesignTemplate:
    """A cached, compiled design plus the recipe for fresh run state.

    Elaboration produces mutable runtime objects (signal values, memory
    words) embedded in the design structure.  The template snapshots
    their post-elaboration state once; :meth:`run` restores that
    snapshot — and clears any event waiters left by a previous run —
    before simulating, so every run starts from an identical universe
    while sharing the parsed AST, the elaborated structure, and the
    compiled process closures.

    A lock serializes runs of one template: the design's runtime state
    is singular, so concurrent in-process runs must take turns (use the
    process-pool batch APIs for true parallelism).
    """

    __slots__ = ("design", "top", "_signal_init", "_memory_init", "_lock")

    def __init__(self, design: Design):
        self.design = design
        self.top = design.top
        self._signal_init = [(sig, sig.value)
                             for sig in design.signals.values()]
        self._memory_init = [(mem, list(mem.words))
                             for mem in design.memories.values()]
        self._lock = threading.Lock()

    def reset(self) -> None:
        """Restore post-elaboration values and clear scheduler residue."""
        for sig, value in self._signal_init:
            sig.value = value
            if sig.waiters:
                sig.waiters.clear()
        for mem, words in self._memory_init:
            mem.words[:] = words
            if mem.waiters:
                mem.waiters.clear()

    def run(self, max_time: int | None = None,
            max_stmts: int | None = None, seed: int = 0,
            engine: str | None = None) -> SimulationResult:
        """Reset state and simulate.

        ``engine`` / ``max_time`` / ``max_stmts`` left as ``None``
        resolve through the active :class:`SimContext`.

        Note: the returned ``SimulationResult.design`` references the
        *shared* design — snapshot any final signal values you need
        before the next run of the same template.
        """
        with self._lock:
            self.reset()
            try:
                return Simulator(self.design, max_time=max_time,
                                 max_stmts=max_stmts, seed=seed,
                                 engine=engine).run()
            finally:
                # The simulator rebinds the design's runtime hooks to
                # itself; restore the defaults so this cached template
                # doesn't pin the finished Simulator (and its stdout /
                # dump buffers / generator frames) in memory.
                design = self.design
                design.runtime_time = lambda: 0
                design.runtime_random = lambda: 0
                design.runtime_fopen = lambda name: 0


# ----------------------------------------------------------------------
# Elaboration-failure caching
# ----------------------------------------------------------------------
# Mutation sweeps generate many variants that fail to parse or
# elaborate; lru_cache does not memoise exceptions, so without this
# layer every sweep re-lexes, re-parses and re-elaborates each broken
# variant on every call.  Only the exception's *shape* (type, args, and
# position attributes) is recorded — never the live instance — so no
# traceback frames are pinned, the original propagation is untouched,
# and every cache hit raises a fresh, identically-rendered instance
# (safe under concurrent hits).  A changed source text is a different
# key, so edits invalidate naturally.
_FAILURE_CACHE_SIZE = 1024
_failure_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
_failure_lock = threading.Lock()
_failure_stats = {"hits": 0, "recorded": 0}

_FAILURE_ATTRS = ("line", "column", "bare_message")


def _raise_cached_failure(key: tuple) -> None:
    with _failure_lock:
        info = _failure_cache.get(key)
        if info is None:
            return
        _failure_cache.move_to_end(key)
        _failure_stats["hits"] += 1
    exc_type, args, attrs = info
    # Bypass __init__ (VerilogSyntaxError's would re-prefix "line L:C:"
    # onto the already-rendered message) and restore the stored shape.
    exc = exc_type.__new__(exc_type)
    exc.args = args
    for name, value in attrs:
        setattr(exc, name, value)
    raise exc


def _record_failure(key: tuple, exc: Exception) -> None:
    attrs = tuple((name, getattr(exc, name)) for name in _FAILURE_ATTRS
                  if hasattr(exc, name))
    with _failure_lock:
        if key not in _failure_cache:
            _failure_stats["recorded"] += 1
            while len(_failure_cache) >= _FAILURE_CACHE_SIZE:
                _failure_cache.popitem(last=False)
            _failure_cache[key] = (type(exc), exc.args, attrs)


# Template caches: per-task scoped LRUs (see repro.core.caches).  Under
# campaign churn — 156 tasks x mutants x judges — a single shared LRU
# let one task's mutant flood evict another task's warm goldens;
# campaign items now run under ``use_task_scope(task_id)``, giving each
# task its own eviction domain.  Capacity follows the active context's
# ``template_cache_size`` knob (read at insertion time); the global
# ``template_cache_budget`` knob bounds total resident entries across
# all scopes by shedding least-recently-used scope buckets.
def _template_capacity() -> int:
    return current_context().template_cache_size


def _template_budget() -> int:
    return current_context().template_cache_budget


_design_templates = ScopedLruCache(_template_capacity,
                                   total_budget=_template_budget)
_pair_templates = ScopedLruCache(_template_capacity,
                                 total_budget=_template_budget)
# Lockstep union templates: (driver, lane sources) -> compiled union
# design.  Keys are large (they embed every lane's text) but few — one
# per (driver, mutant-set) pairing — and repeated sweeps of the same
# pairing (R/S matrix reruns, benches) hit it.
_union_templates = ScopedLruCache(_template_capacity,
                                  total_budget=_template_budget)


def design_template(source_text: str, top: str) -> DesignTemplate:
    """Elaboration cache: ``(source_text, top)`` -> compiled template.

    Failures are cached too: a pair that failed to parse or elaborate
    re-raises the recorded error without re-running the front end.

    >>> src = "module m(output o);\\nassign o = 1'b1;\\nendmodule"
    >>> template = design_template(src, "m")
    >>> design_template(src, "m") is template   # cached: same object
    True
    >>> template.run().design.signal("o").value.to_uint()
    1
    """
    key = (source_text, top)
    _raise_cached_failure(key)
    try:
        return _design_templates.get_or_create(
            key, lambda: DesignTemplate(
                elaborate(parse_cached(source_text), top)))
    except (VerilogSyntaxError, ElaborationError) as exc:
        _record_failure(key, exc)
        raise


def _build_pair_template(dut_src: str, tb_src: str,
                         top: str) -> DesignTemplate:
    dut_ast = parse_cached(dut_src)
    tb_ast = parse_cached(tb_src)
    merged = hdl_ast.SourceFile(tuple(dut_ast.modules)
                                + tuple(tb_ast.modules))
    return DesignTemplate(elaborate(merged, top))


def _pair_template(dut_src: str, tb_src: str, top: str) -> DesignTemplate:
    """Elaboration cache for (DUT, testbench) pairs.

    Merges the two separately-cached ASTs at the module-tuple level (no
    re-parse of concatenated text).  DUT modules come first so testbench
    modules shadow same-named ones, exactly like the pre-cache merge.
    Failures are cached like :func:`design_template`'s.
    """
    key = (dut_src, tb_src, top)
    _raise_cached_failure(key)
    try:
        return _pair_templates.get_or_create(
            key, lambda: _build_pair_template(dut_src, tb_src, top))
    except (VerilogSyntaxError, ElaborationError) as exc:
        _record_failure(key, exc)
        raise


def _clear_failure_cache() -> None:
    with _failure_lock:
        _failure_cache.clear()


def _failure_cache_stats() -> dict:
    with _failure_lock:
        return {"hits": _failure_stats["hits"],
                "recorded": _failure_stats["recorded"],
                "size": len(_failure_cache)}


def _export_failure_cache() -> dict:
    """Snapshot payload: ``{key: (exc_type, args, attrs)}`` — already
    shape-only (no live exception instances), so directly picklable."""
    with _failure_lock:
        return dict(_failure_cache)


def _import_failure_cache(entries: dict) -> int:
    added = 0
    with _failure_lock:
        for key, info in entries.items():
            if key not in _failure_cache:
                while len(_failure_cache) >= _FAILURE_CACHE_SIZE:
                    _failure_cache.popitem(last=False)
                _failure_cache[key] = info
                added += 1
    return added


# ----------------------------------------------------------------------
# Template warm-start (snapshot export/import)
# ----------------------------------------------------------------------
# A DesignTemplate owns compiled closures, which cannot pickle — so the
# template layers export only their *keys* (scope + source signature)
# and the importer re-elaborates each one locally, against the (already
# imported, hence warm) token and AST caches.  That front-loads the
# parse/elaborate/compile cost into pool-worker initialization, which
# is exactly the point: a spawn-started worker's first batch then runs
# at fork-path steady state.
def _import_design_keys(keys) -> int:
    return _rebuild_templates(keys, lambda key: design_template(*key))


def _import_pair_keys(keys) -> int:
    return _rebuild_templates(keys, lambda key: _pair_template(*key))


def _rebuild_templates(keys, build) -> int:
    from ..hdl.compile import compile_spec

    rebuilt = 0
    begin_warm_start()
    try:
        for scope, key in keys:
            with use_task_scope(scope):
                try:
                    template = build(key)
                    # Programs normally compile lazily on first run;
                    # force them now so the warm-up, not the worker's
                    # first batch, pays the lowering cost.
                    for spec in template.design.processes:
                        compile_spec(spec)
                except (VerilogSyntaxError, ElaborationError):
                    # The failure is (re-)recorded; the entry still
                    # warms the failure path.
                    pass
                except HdlError:  # pragma: no cover - defensive
                    # Late (run-time-class) lowering errors surface on
                    # the executed path instead; never kill a warm-up.
                    pass
                else:
                    rebuilt += 1
    finally:
        end_warm_start()
    return rebuilt


# Every caching layer registers with the shared facade; registration
# order fixes the key order of ``caches.stats()`` (and therefore of
# ``simulation_cache_stats()``, whose recorded shape predates the
# registry).  Layers whose contents are picklable plain data register
# export/import hooks and so participate in warm-start snapshots; the
# program cache holds closures and is deliberately snapshot-blind (its
# contents are re-derived by the template import above).
caches.register("tokenize", clear=clear_tokenize_cache,
                stats=tokenize_cache_stats,
                export=export_tokenize_cache,
                import_=import_tokenize_cache)
caches.register("parse", clear=clear_parse_cache,
                stats=parse_cache_stats,
                export=export_parse_cache,
                import_=import_parse_cache)
caches.register("design", clear=_design_templates.clear,
                stats=_design_templates.stats,
                export=_design_templates.export_keys,
                import_=_import_design_keys)
caches.register("pair", clear=_pair_templates.clear,
                stats=_pair_templates.stats,
                export=_pair_templates.export_keys,
                import_=_import_pair_keys)
caches.register("failure", clear=_clear_failure_cache,
                stats=_failure_cache_stats,
                export=_export_failure_cache,
                import_=_import_failure_cache)
caches.register("programs", clear=clear_program_cache,
                stats=program_cache_stats)


def _clear_union_layer() -> None:
    _union_templates.clear()
    clear_lockstep_caches()


def _union_layer_stats() -> dict:
    stats = dict(_union_templates.stats())
    stats["renamed_lanes"] = lockstep_cache_stats()["size"]
    return stats


# Union templates hold compiled closures (snapshot-blind, like the
# program cache); the lockstep rename cache rides on the same layer.
caches.register("union", clear=_clear_union_layer,
                stats=_union_layer_stats)


def clear_template_caches() -> None:
    """Drop elaboration templates and cached failures, keeping the parse
    cache and the shared slot-program cache warm."""
    caches.clear("design", "pair", "failure", "union")


def clear_simulation_caches() -> None:
    """Drop every caching layer (benchmark cold starts): templates,
    cached failures, parsed ASTs, token streams and shared compiled
    programs."""
    caches.clear()


def simulation_cache_stats() -> dict:
    """Hit/miss counters for the caching layers (telemetry)."""
    return caches.stats()


@dataclass(frozen=True)
class Record:
    """One parsed dump line: a check-point of one scenario."""

    scenario: int
    values: dict  # signal name -> decimal string ("x" when undefined)


@dataclass
class DriverRun:
    """Outcome of simulating driver + DUT."""

    status: str  # OK / SYNTAX / ELABORATION / RUNTIME
    records: list[Record] = field(default_factory=list)
    detail: str = ""
    stdout: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == OK


_RECORD_RE = re.compile(r"scenario:\s*(\d+)")
_FIELD_RE = re.compile(r"(\w+)\s*=\s*(x|-?\d+)")


def _parse_dump_line(line: str) -> Record | None:
    match = _RECORD_RE.search(line)
    if not match:
        return None
    values = {name: value for name, value in _FIELD_RE.findall(line)}
    return Record(scenario=int(match.group(1)), values=values)


def parse_dump(lines: list[str]) -> list[Record]:
    """Parse ``scenario: k, a = 1, ...`` dump lines into records.

    >>> parse_dump(["scenario: 2, q = 7, valid = x", "noise"])
    [Record(scenario=2, values={'q': '7', 'valid': 'x'})]
    """
    records = []
    for line in lines:
        record = _parse_dump_line(line)
        if record is not None:
            records.append(record)
    return records


# A widened dump line's value group parses directly when it sits in a
# plain ``name = <group>`` position: the literal before it ends with the
# field-name prefix, the literal after it cannot extend the value token,
# and every lane's token is exactly one field value.  Anything else
# (exotic formats) takes the slow path — reconstruct each lane's line
# and parse it like the per-mutant run would have.
_GROUP_NAME_RE = re.compile(r"([A-Za-z_]\w*)\s*=\s*$")
_GROUP_VALUE_RE = re.compile(r"\s*(x|-?\d+)")


def _demux_records(lines: list[str],
                   n_lanes: int) -> list[list[Record]]:
    """Per-lane records from a lockstep union run's widened dump.

    Equivalent to :func:`repro.hdl.lockstep.demux_lines` followed by
    :func:`parse_dump` per lane (the slow path does exactly that, line
    by line), but the common ``name = value`` shape parses the shared
    line skeleton once and patches only the per-lane group fields.
    """
    lanes: list[list[Record]] = [[] for _ in range(n_lanes)]
    for line in lines:
        parts = line.split(lockstep_mod.GROUP_DELIM)
        if len(parts) == 1:
            record = _parse_dump_line(line)
            if record is not None:
                for lane in lanes:
                    lane.append(record)
            continue
        groups = [part.split(lockstep_mod.LANE_DELIM) if i % 2 else part
                  for i, part in enumerate(parts)]

        patches: list[tuple[str, list[str]]] = []
        base_line_parts: list[str] = []
        simple = True
        for i, part in enumerate(groups):
            if not i % 2:
                base_line_parts.append(part)
                continue
            base_line_parts.append(part[0])
            name_match = _GROUP_NAME_RE.search(groups[i - 1])
            following = groups[i + 1] if i + 1 < len(groups) else ""
            if (name_match is None
                    or (following[:1].isalnum() or following[:1] == "_")):
                simple = False
                break
            tokens = []
            for token in part:
                value = _GROUP_VALUE_RE.fullmatch(token)
                if value is None:
                    simple = False
                    break
                tokens.append(value.group(1))
            if not simple:
                break
            patches.append((name_match.group(1), tokens))

        base = _parse_dump_line("".join(base_line_parts)) if simple \
            else None
        if base is not None:
            # parse_dump is last-occurrence-wins per field name; the
            # patch is only faithful if the group is the winning
            # occurrence, which lane 0's parse tells us directly.
            for name, tokens in patches:
                if base.values.get(name) != tokens[0]:
                    base = None
                    break
        if base is None:
            # Slow path: byte-faithful per-lane reconstruction.
            for k in range(n_lanes):
                record = _parse_dump_line("".join(
                    groups[i][k] if i % 2 else groups[i]
                    for i in range(len(groups))))
                if record is not None:
                    lanes[k].append(record)
            continue
        for k in range(n_lanes):
            values = dict(base.values)
            for name, tokens in patches:
                values[name] = tokens[k]
            lanes[k].append(Record(scenario=base.scenario, values=values))
    return lanes


def run_driver(driver_src: str, dut_src: str,
               engine: str | None = None) -> DriverRun:
    """Simulate the hybrid-TB driver against a DUT, collect the dump."""
    try:
        parse_cached(driver_src)
    except VerilogSyntaxError as exc:
        return DriverRun(SYNTAX, detail=f"driver: {exc}")
    try:
        parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return DriverRun(SYNTAX, detail=f"dut: {exc}")

    try:
        template = _pair_template(dut_src, driver_src, "tb")
    except VerilogSyntaxError as exc:  # pragma: no cover - defensive
        return DriverRun(SYNTAX, detail=str(exc))
    except ElaborationError as exc:
        return DriverRun(ELABORATION, detail=str(exc))
    try:
        result = template.run(engine=engine)
    except (SimulationError, SimulationLimit) as exc:
        return DriverRun(RUNTIME, detail=str(exc))
    except HdlError as exc:  # late elaboration-class errors: still runtime
        return DriverRun(RUNTIME, detail=str(exc))
    except RecursionError:  # pragma: no cover - defensive
        return DriverRun(RUNTIME, detail="recursion limit")

    if not result.finished:
        return DriverRun(RUNTIME, detail="simulation ended without $finish")
    lines = result.files.get(DUMP_FILE, [])
    records = parse_dump(lines)
    if not records:
        return DriverRun(RUNTIME, detail="no check-points in dump",
                         stdout=result.stdout)
    return DriverRun(OK, records=records, stdout=result.stdout)


@dataclass
class MonolithicRun:
    """Outcome of simulating a self-checking (baseline) testbench."""

    status: str
    verdict: bool | None = None  # True = TB printed pass
    detail: str = ""


def run_monolithic(tb_src: str, dut_src: str,
                   engine: str | None = None) -> MonolithicRun:
    """Simulate a baseline testbench; parse its printed verdict."""
    from ..codegen.baseline import baseline_verdict

    try:
        parse_cached(tb_src)
    except VerilogSyntaxError as exc:
        return MonolithicRun(SYNTAX, detail=f"tb: {exc}")
    try:
        parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return MonolithicRun(SYNTAX, detail=f"dut: {exc}")
    try:
        template = _pair_template(dut_src, tb_src, "tb")
    except VerilogSyntaxError as exc:  # pragma: no cover - defensive
        return MonolithicRun(SYNTAX, detail=str(exc))
    except ElaborationError as exc:
        return MonolithicRun(ELABORATION, detail=str(exc))
    try:
        result = template.run(engine=engine)
    except (SimulationError, SimulationLimit) as exc:
        return MonolithicRun(RUNTIME, detail=str(exc))
    except HdlError as exc:
        return MonolithicRun(RUNTIME, detail=str(exc))
    except RecursionError:  # pragma: no cover - defensive
        return MonolithicRun(RUNTIME, detail="recursion limit")
    if not result.finished:
        return MonolithicRun(RUNTIME, detail="no $finish")
    verdict = baseline_verdict(result.stdout)
    if verdict is None:
        return MonolithicRun(RUNTIME, detail="testbench printed no verdict")
    return MonolithicRun(OK, verdict=verdict)


def dut_compiles(dut_src: str) -> tuple[bool, str]:
    """Check a bare DUT for syntax + elaboration errors (Eval0-style).

    >>> dut_compiles(
    ...     "module top_module(output o); assign o = 1'b0; endmodule")
    (True, '')
    """
    try:
        source = parse_cached(dut_src)
    except VerilogSyntaxError as exc:
        return False, f"{SYNTAX}: {exc}"
    try:
        elaborate(source, "top_module")
    except ElaborationError as exc:
        return False, f"{ELABORATION}: {exc}"
    except HdlError as exc:  # pragma: no cover - defensive
        return False, str(exc)
    return True, ""


# ----------------------------------------------------------------------
# Persistent worker pool (with warm-start)
# ----------------------------------------------------------------------
# One ProcessPoolExecutor is shared by every batch and campaign call in
# the process: created lazily on first use, grown monotonically to the
# largest worker count requested, recreated with the same configuration
# if a worker dies (see _pool_map), and torn down atexit.
#
# How workers get warm depends on the start method, resolved through
# ``SimContext.start_method``:
#
# - **fork** (the Linux default): workers inherit the parent's token /
#   AST / template / program caches through copy-on-write memory — no
#   transfer needed, so no snapshot is shipped.
# - **spawn / forkserver**: workers begin as blank interpreters, and
#   compiled-closure programs cannot be pickled across.  When the
#   active context's ``warm_start`` flag is set (the default), pool
#   creation exports a CacheSnapshot (token streams, ASTs, template
#   signatures, cached failures) from this process and ships it to each
#   worker through the executor's ``initializer``; the worker imports
#   it — re-elaborating and re-compiling the template signatures
#   locally — before it sees its first work item.  A freshly *healed*
#   pool re-snapshots the by-then-warm parent, so recovery from a
#   killed worker also starts warm.
_pool_lock = threading.Lock()
_pool: ProcessPoolExecutor | None = None
_pool_workers = 0
_pool_start_method = ""
_pool_warm_layers: dict = {}
_pool_created_warm = False

#: The layers a snapshot can carry (and fork can meaningfully inherit);
#: used to decide whether this process has any warmth to give workers.
_SNAPSHOT_LAYERS = ("tokenize", "parse", "design", "pair", "failure")


def _caches_have_content() -> bool:
    stats = caches.stats(*_SNAPSHOT_LAYERS)
    return any(layer.get("size", 0) > 0 for layer in stats.values())


def _resolve_start_method(name: str | None) -> str:
    """Map a context ``start_method`` to a concrete multiprocessing
    start method, validating platform availability."""
    if name in (None, "", START_METHOD_DEFAULT):
        return multiprocessing.get_start_method()
    if name not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"start method {name!r} is not available on this platform; "
            f"available: {multiprocessing.get_all_start_methods()}")
    return name


def _warm_start_initializer(payload: bytes) -> None:
    """Run once in each fresh worker: import the shipped snapshot.

    Any failure degrades the worker to a cold start instead of raising:
    an initializer exception would break the entire pool, and a warm
    start is an optimization, never a correctness requirement.
    """
    try:
        caches.import_snapshot(pickle.loads(payload))
    except Exception as exc:  # pragma: no cover - defensive
        print(f"warning: pool warm-start import failed ({exc}); "
              f"worker starts cold", file=sys.stderr)


def export_warm_start_snapshot() -> CacheSnapshot:
    """Snapshot this process's picklable cache layers (the warm-start
    artifact shipped to pool workers; also usable standalone — pickle
    it to disk and import it in a later process via
    :meth:`~repro.core.caches.CacheRegistry.import_snapshot`)."""
    return caches.export_snapshot()


def get_sim_pool(jobs: int, start_method: str | None = None,
                 warm_start: bool | None = None) -> ProcessPoolExecutor:
    """Return the shared persistent process pool.

    The pool grows if ``jobs`` exceeds its current worker count (it
    never shrinks) and is recreated if ``start_method`` (explicit
    argument, else the active context's) differs from the live pool's.
    ``warm_start=None`` resolves through the active context; snapshots
    are only shipped to non-fork pools (forked workers inherit warm
    caches through process memory).

    A pool created while this process was still *cold* (nothing cached
    — e.g. a batch ran before any warm-up) is recreated once, the first
    time warmth is requested and the parent actually has cached state:
    worker warm-up only happens at creation (snapshot initializer /
    fork memory image), so without the recreate such a pool would stay
    cold forever — campaigns that pre-warm after an early batch would
    silently get cold workers.  A pool created warm is never churned:
    later cache growth does not trigger recreation.
    """
    global _pool, _pool_workers, _pool_start_method, _pool_warm_layers
    global _pool_created_warm
    jobs = max(1, int(jobs))
    context = current_context()
    method = _resolve_start_method(start_method or context.start_method)
    warm = context.warm_start if warm_start is None else warm_start
    with _pool_lock:
        if _pool is not None:
            stale_cold = (warm and not _pool_created_warm
                          and _caches_have_content())
            if (_pool_workers < jobs or _pool_start_method != method
                    or stale_cold):
                _pool.shutdown(wait=False)
                _pool = None
        if _pool is None:
            initializer = None
            initargs = ()
            warm_layers: dict = {}
            content = _caches_have_content()
            if warm and content and method != "fork":
                snapshot = caches.export_snapshot()
                if snapshot:
                    initializer = _warm_start_initializer
                    initargs = (pickle.dumps(
                        snapshot, protocol=pickle.HIGHEST_PROTOCOL),)
                    warm_layers = snapshot.counts()
            _pool = ProcessPoolExecutor(
                max_workers=jobs,
                mp_context=multiprocessing.get_context(method),
                initializer=initializer, initargs=initargs)
            _pool_workers = jobs
            _pool_start_method = method
            _pool_warm_layers = warm_layers
            _pool_created_warm = warm and content
        return _pool


def _pool_load(pool) -> tuple[int, int]:
    """(queue_depth, in_flight) for a live executor.

    ``in_flight`` counts submitted-but-unfinished work items;
    ``queue_depth`` is the subset still parked in the inter-process
    call queue (not yet picked up by a worker).  Read from executor
    internals defensively — a private-attribute rename in a future
    stdlib degrades the counters to zero, never breaks telemetry.
    """
    pending = getattr(pool, "_pending_work_items", None)
    in_flight = len(pending) if pending is not None else 0
    call_queue = getattr(pool, "_call_queue", None)
    try:
        queue_depth = call_queue.qsize() if call_queue is not None else 0
    except (NotImplementedError, OSError):  # pragma: no cover - macOS
        queue_depth = 0
    return queue_depth, in_flight


def sim_pool_info() -> dict:
    """Telemetry: whether the shared pool is alive, its configured
    worker count, worker PIDs, the start method it was created with,
    its warm/cold state, and its current load (``queue_depth`` /
    ``in_flight``) — the counters the service telemetry endpoint and
    ``repro serve --status`` report.

    ``warm`` reports how workers acquired caches *at pool creation*:
    ``"inherited"`` for fork pools forked from a warm parent
    (copy-on-write memory), ``"snapshot"`` when a warm-start artifact
    was shipped through the initializer (``warm_layers`` then counts
    the entries per layer), and ``"cold"`` when neither applies
    (warm-start disabled, or nothing was cached at creation time —
    though such a pool is recreated warm on the next warm-requesting
    call once the parent has cached state; see :func:`get_sim_pool`).
    """
    with _pool_lock:
        if _pool is None:
            return {"alive": False, "workers": 0, "pids": (),
                    "start_method": "", "warm": "cold",
                    "warm_layers": {}, "queue_depth": 0, "in_flight": 0}
        processes = getattr(_pool, "_processes", None) or {}
        if _pool_start_method == "fork":
            warm = "inherited" if _pool_created_warm else "cold"
        elif _pool_warm_layers:
            warm = "snapshot"
        else:
            warm = "cold"
        queue_depth, in_flight = _pool_load(_pool)
        return {"alive": True, "workers": _pool_workers,
                "pids": tuple(sorted(processes.keys())),
                "start_method": _pool_start_method, "warm": warm,
                "warm_layers": dict(_pool_warm_layers),
                "queue_depth": queue_depth, "in_flight": in_flight}


def shutdown_sim_pool(wait: bool = True) -> None:
    """Tear down the shared pool.  Registered atexit so worker processes
    never outlive the interpreter; safe to call repeatedly."""
    global _pool, _pool_workers, _pool_start_method, _pool_warm_layers
    global _pool_created_warm
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=wait)
            _pool = None
            _pool_workers = 0
            _pool_start_method = ""
            _pool_warm_layers = {}
            _pool_created_warm = False


atexit.register(shutdown_sim_pool)


def _pool_map(worker, items: list, jobs: int) -> list:
    """Map over the persistent pool; a broken pool (killed worker) is
    discarded and recreated once before giving up.

    RuntimeError is retried alongside BrokenProcessPool: a concurrent
    ``get_sim_pool`` grow request shuts the executor down between our
    lookup and ``map``, which surfaces as ``RuntimeError: cannot
    schedule new futures after shutdown``.  A genuine worker-raised
    RuntimeError simply re-raises from the retry.
    """
    try:
        return list(get_sim_pool(jobs).map(worker, items))
    except (BrokenProcessPool, RuntimeError):
        shutdown_sim_pool(wait=False)
        return list(get_sim_pool(jobs).map(worker, items))


# ----------------------------------------------------------------------
# Batched execution
# ----------------------------------------------------------------------
def _driver_batch_worker(item: tuple) -> DriverRun:
    driver_src, dut_src, context = item
    with use_context(context):
        return run_driver(driver_src, dut_src)


def _monolithic_batch_worker(item: tuple) -> MonolithicRun:
    tb_src, dut_src, context = item
    with use_context(context):
        return run_monolithic(tb_src, dut_src)


def _run_batch(worker, shared_src: str, dut_srcs, jobs: int | None,
               engine: str | None, context: SimContext | None) -> list:
    """Shared fan-out: dedup identical DUTs, then run each unique pair.

    The shared testbench text is parsed once (cache) and each unique
    (testbench, DUT) design is elaborated + compiled once (template
    cache), so a batch amortizes every per-design cost across the runs.
    With ``jobs > 1`` unique pairs spread over the *persistent* process
    pool (:func:`get_sim_pool`): workers survive across batch calls, so
    their caches stay warm and repeated small batches skip the pool
    spin-up entirely.

    The resolved :class:`SimContext` travels inside each work item and
    is activated in whichever process runs it — pool workers have their
    own root context, so shipping plain work without the context would
    ignore any activation made in this (the parent) process.
    """
    context = context if context is not None else current_context()
    if engine:
        context = context.evolve(engine=engine)
    if jobs is None:
        jobs = context.jobs
    dut_list = list(dut_srcs)
    order: list[str] = []
    seen = set()
    for dut in dut_list:
        if dut not in seen:
            seen.add(dut)
            order.append(dut)

    items = [(shared_src, dut, context) for dut in order]
    if jobs > 1 and len(order) > 1:
        unique_results = _pool_map(worker, items, jobs)
    else:
        unique_results = [worker(item) for item in items]

    by_src = dict(zip(order, unique_results))
    return [by_src[dut] for dut in dut_list]


def run_driver_batch(driver_src: str, dut_srcs, jobs: int | None = None,
                     engine: str | None = None,
                     context: SimContext | None = None) -> list[DriverRun]:
    """Run one hybrid-TB driver against many DUT variants.

    This is the validator/AutoEval hot path: the driver is compiled
    once, identical DUTs are simulated once, and ``jobs > 1`` fans the
    unique runs across a process pool.  ``jobs`` / ``engine`` /
    ``context`` left unset resolve through the active
    :class:`SimContext`.
    """
    return _run_batch(_driver_batch_worker, driver_src, dut_srcs, jobs,
                      engine, context)


def run_monolithic_batch(tb_src: str, dut_srcs, jobs: int | None = None,
                         engine: str | None = None,
                         context: SimContext | None = None,
                         ) -> list[MonolithicRun]:
    """Run one self-checking testbench against many DUT variants."""
    return _run_batch(_monolithic_batch_worker, tb_src, dut_srcs, jobs,
                      engine, context)


# ----------------------------------------------------------------------
# Mutant sweeps (lockstep union engine with per-mutant fallback)
# ----------------------------------------------------------------------
@dataclass
class MutantSweep:
    """Outcome of one driver swept across N same-interface DUT variants.

    ``runs`` aligns with the ``dut_srcs`` argument
    (:class:`DriverRun` for hybrid sweeps, :class:`MonolithicRun` for
    monolithic ones).  ``engine`` reports the strategy that actually
    executed — ``"lockstep"`` or ``"per-mutant"`` — and
    ``fallback_reason`` is non-empty when lockstep was requested but the
    sweep fell back (unsupported driver shape, union build/run failure,
    monolithic stdout verdicts).

    When a ``golden_src`` was supplied, ``golden`` carries its run and
    ``retire_rounds[i]`` is the dump-record index at which variant ``i``
    first diverged from the golden lane (``None`` = never diverged, or
    no comparable records).  Both engines compute it from the same
    per-lane records, so the differential fuzz battery asserts equality.
    """

    runs: list
    golden: DriverRun | None = None
    retire_rounds: list = field(default_factory=list)
    engine: str = MUTANT_PER_MUTANT
    fallback_reason: str = ""


def _retire_round(golden_run: DriverRun | None,
                  run) -> int | None:
    """First record index where ``run`` diverges from the golden lane."""
    if golden_run is None or not golden_run.ok:
        return None
    if not getattr(run, "ok", False):
        return None
    records = getattr(run, "records", None)
    if records is None:
        return None
    for index, (golden_record, record) in enumerate(
            zip(golden_run.records, records)):
        if golden_record != record:
            return index
    if len(records) != len(golden_run.records):
        return min(len(records), len(golden_run.records))
    return None


def _per_mutant_sweep(driver_src: str, dut_list: list[str],
                      golden_src: str | None, jobs: int | None,
                      context: SimContext,
                      fallback_reason: str = "") -> MutantSweep:
    lanes = ([golden_src] if golden_src is not None else []) + dut_list
    runs = run_driver_batch(driver_src, lanes, jobs=jobs, context=context)
    golden_run = runs[0] if golden_src is not None else None
    dut_runs = runs[1:] if golden_src is not None else runs
    return MutantSweep(
        runs=dut_runs, golden=golden_run,
        retire_rounds=[_retire_round(golden_run, run)
                       for run in dut_runs],
        engine=MUTANT_PER_MUTANT, fallback_reason=fallback_reason)


def _lockstep_sweep(driver_src: str, dut_list: list[str],
                    golden_src: str | None,
                    context: SimContext) -> MutantSweep:
    """Run the sweep as one union design.

    Raises :exc:`LockstepUnsupported` (or a front-end/runtime
    :exc:`~repro.hdl.errors.HdlError`) when the union cannot be built or
    run faithfully; the caller falls back to the per-mutant path.
    """
    lanes = ([golden_src] if golden_src is not None else []) + dut_list
    order: list[str] = []
    seen = set()
    for lane in lanes:
        if lane not in seen:
            seen.add(lane)
            order.append(lane)
    n_lanes = len(order)

    key = ("union", driver_src, tuple(order))
    _raise_cached_failure(key)
    try:
        template = _union_templates.get_or_create(
            key, lambda: DesignTemplate(
                elaborate(build_union(driver_src, order), "tb")))
    except (VerilogSyntaxError, ElaborationError,
            LockstepUnsupported) as exc:
        _record_failure(key, exc)
        raise

    with use_context(context):
        # One run carries every lane's statements: scale the statement
        # budget so an N-lane union is budgeted like N single runs.
        result = template.run(max_stmts=context.max_stmts * n_lanes)
    if not result.finished:
        raise LockstepUnsupported("union run ended without $finish")

    lane_records = _demux_records(result.files.get(DUMP_FILE, []), n_lanes)
    runs_by_src: dict[str, DriverRun] = {}
    for lane_src, records in zip(order, lane_records):
        if records:
            runs_by_src[lane_src] = DriverRun(
                OK, records=records, stdout=list(result.stdout))
        else:
            runs_by_src[lane_src] = DriverRun(
                RUNTIME, detail="no check-points in dump",
                stdout=list(result.stdout))

    golden_run = (runs_by_src[golden_src]
                  if golden_src is not None else None)
    dut_runs = [runs_by_src[dut] for dut in dut_list]
    return MutantSweep(
        runs=dut_runs, golden=golden_run,
        retire_rounds=[_retire_round(golden_run, run)
                       for run in dut_runs],
        engine=MUTANT_LOCKSTEP)


def run_mutant_sweep(driver_src: str, dut_srcs,
                     golden_src: str | None = None,
                     kind: str = "hybrid",
                     jobs: int | None = None,
                     engine: str | None = None,
                     mutant_engine: str | None = None,
                     context: SimContext | None = None) -> MutantSweep:
    """Sweep one shared testbench across many DUT variants of one
    design (AutoEval Eval2 mutant batches, validator R/S matrices).

    With the default ``lockstep`` strategy the driver and every variant
    merge into one union design executed in a single simulation — the
    driver's stimulus, clocking and scheduler costs are paid once per
    sweep instead of once per variant — and shapes the union cannot
    express fall back to the ``per-mutant`` path transparently
    (``MutantSweep.fallback_reason`` says why).  ``per-mutant`` is the
    behavioural oracle: it simulates each variant separately and is
    pinned against lockstep by a differential fuzz battery.

    ``kind="monolithic"`` sweeps a self-checking testbench
    (:class:`MonolithicRun` results); its verdicts travel on stdout,
    which a union run shares across lanes, so it always executes
    per-mutant.

    ``golden_src`` adds a golden reference lane: the sweep reports its
    run separately plus each variant's *retire round* — the dump-record
    index of first divergence from the golden lane.

    ``mutant_engine`` / ``jobs`` / ``engine`` / ``context`` left unset
    resolve through the active :class:`SimContext`
    (``SimContext.mutant_engine``, env ``REPRO_MUTANT_ENGINE``).
    """
    context = context if context is not None else current_context()
    if engine:
        context = context.evolve(engine=engine)
    strategy = (mutant_engine if mutant_engine is not None
                else context.mutant_engine)
    if strategy not in MUTANT_ENGINES:
        raise ValueError(f"unknown mutant_engine {strategy!r}; "
                         f"expected one of {MUTANT_ENGINES}")
    dut_list = list(dut_srcs)

    if kind == "monolithic":
        lanes = ([golden_src] if golden_src is not None else []) + dut_list
        runs = run_monolithic_batch(driver_src, lanes, jobs=jobs,
                                    context=context)
        golden_run = runs[0] if golden_src is not None else None
        return MutantSweep(
            runs=runs[1:] if golden_src is not None else runs,
            golden=golden_run,
            retire_rounds=[None] * len(dut_list),
            engine=MUTANT_PER_MUTANT,
            fallback_reason=("monolithic verdicts travel on stdout"
                             if strategy == MUTANT_LOCKSTEP else ""))
    if kind != "hybrid":
        raise ValueError(f"unknown sweep kind {kind!r}; "
                         f"expected 'hybrid' or 'monolithic'")

    if strategy == MUTANT_PER_MUTANT or not dut_list:
        return _per_mutant_sweep(driver_src, dut_list, golden_src, jobs,
                                 context)
    try:
        return _lockstep_sweep(driver_src, dut_list, golden_src, context)
    except (LockstepUnsupported, HdlError, RecursionError) as exc:
        reason = f"{type(exc).__name__}: {exc}"
        return _per_mutant_sweep(driver_src, dut_list, golden_src, jobs,
                                 context, fallback_reason=reason)
