"""The scenario-based testbench self-validator (paper Section III-B).

Simulates the candidate testbench against the imperfect-RTL judge group,
builds the RS matrix, and applies a validation criterion:

- ``100%-wrong`` — a fully red column marks the scenario (and hence the
  testbench) wrong;
- ``70%-wrong`` (the paper's choice) — a column at least 70% red marks
  the scenario wrong, *unless* more than 25% of rows are fully green, in
  which case the testbench is declared correct outright;
- ``50%-wrong`` — like 70%-wrong with a 50% column threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..llm.base import LLMClient, MeteredClient
from ..problems.model import TaskSpec
from ..util import stable_hash
from .artifacts import HybridTestbench
from .checker_runtime import run_checker
from .rs_matrix import RSMatrix, RSRow, build_matrix
from .rtl_group import DEFAULT_GROUP_SIZE, JudgeRtl, build_rtl_group
from .simulation import run_mutant_sweep


@dataclass(frozen=True)
class Criterion:
    """A validation decision rule over the RS matrix."""

    name: str
    column_threshold: float
    green_row_override: float | None  # None disables the row rule

    def __post_init__(self) -> None:
        if not 0.0 < self.column_threshold <= 1.0:
            raise ValueError("column threshold must be in (0, 1]")


CRITERION_100 = Criterion("100%-wrong", 1.00, None)
CRITERION_70 = Criterion("70%-wrong", 0.70, 0.25)
CRITERION_50 = Criterion("50%-wrong", 0.50, 0.25)

CRITERIA = {c.name: c for c in (CRITERION_100, CRITERION_70, CRITERION_50)}
DEFAULT_CRITERION = CRITERION_70


@dataclass
class ValidationReport:
    """The validator's verdict plus the bug information for the corrector."""

    verdict: bool
    wrong: tuple[int, ...] = ()
    correct: tuple[int, ...] = ()
    uncertain: tuple[int, ...] = ()
    matrix: RSMatrix | None = None
    note: str = ""

    @property
    def bug_info(self) -> dict:
        return {"wrong": self.wrong, "correct": self.correct,
                "uncertain": self.uncertain}


def decide(matrix: RSMatrix, criterion: Criterion) -> ValidationReport:
    """Apply a criterion to an RS matrix."""
    if matrix.n_valid == 0:
        return ValidationReport(False, matrix=matrix,
                                uncertain=matrix.scenario_indexes,
                                note="no valid judge rows")

    wrong, correct, uncertain = [], [], []
    for scenario in matrix.scenario_indexes:
        fraction = matrix.column_wrong_fraction(scenario)
        if fraction is None:
            uncertain.append(scenario)
        elif fraction >= criterion.column_threshold:
            wrong.append(scenario)
        elif fraction >= criterion.column_threshold / 2:
            uncertain.append(scenario)
        else:
            correct.append(scenario)

    if (criterion.green_row_override is not None
            and matrix.fully_green_row_fraction()
            > criterion.green_row_override):
        return ValidationReport(
            True, correct=matrix.scenario_indexes, matrix=matrix,
            note=("green-row override: "
                  f"{matrix.fully_green_row_fraction():.0%} rows fully "
                  "green"))

    return ValidationReport(
        verdict=not wrong, wrong=tuple(wrong), correct=tuple(correct),
        uncertain=tuple(uncertain), matrix=matrix)


class ScenarioValidator:
    """Validates hybrid testbenches against one task's judge group.

    The judge group is generated once and reused across correction and
    reboot iterations (the paper's Fig. 6a experiments use one fixed
    group per task).  Driver-vs-RTL simulations are cached: corrections
    only replace the Python checker, so the expensive Verilog runs are
    shared across iterations.
    """

    def __init__(self, client: LLMClient | MeteredClient, task: TaskSpec,
                 criterion: Criterion = DEFAULT_CRITERION,
                 group_size: int = DEFAULT_GROUP_SIZE,
                 sim_jobs: int | None = None):
        self.client = client
        self.task = task
        self.criterion = criterion
        self.group_size = group_size
        self.sim_jobs = sim_jobs
        self._group: tuple[JudgeRtl, ...] | None = None
        self._sim_cache: dict = {}
        self._retire_cache: dict = {}

    # ------------------------------------------------------------------
    @property
    def rtl_group(self) -> tuple[JudgeRtl, ...]:
        if self._group is None:
            self._group = build_rtl_group(self.client, self.task,
                                          self.group_size)
        return self._group

    def use_group(self, group: tuple[JudgeRtl, ...]) -> None:
        """Inject a pre-built judge group (used by the Fig. 6a study)."""
        self._group = tuple(group)

    # ------------------------------------------------------------------
    def _judge_key(self, driver_src: str, judge: JudgeRtl):
        return (stable_hash(driver_src), judge.sample_index,
                stable_hash(judge.source))

    def _sweep_judges(self, driver_src: str, judges) -> None:
        """Sweep the driver across ``judges`` and cache runs + retire
        rounds (first divergence from the golden-RTL lane)."""
        sweep = run_mutant_sweep(driver_src,
                                 [judge.source for judge in judges],
                                 golden_src=self.task.golden_rtl(),
                                 jobs=self.sim_jobs)
        for judge, run, retire in zip(judges, sweep.runs,
                                      sweep.retire_rounds):
            key = self._judge_key(driver_src, judge)
            self._sim_cache[key] = run
            self._retire_cache[key] = retire

    def _judge_records(self, driver_src: str, judge: JudgeRtl):
        key = self._judge_key(driver_src, judge)
        if key not in self._sim_cache:
            self._sweep_judges(driver_src, [judge])
        return self._sim_cache[key]

    def _prefetch_judges(self, driver_src: str) -> None:
        """Batch all uncached driver-vs-judge simulations.

        Routed through :func:`run_mutant_sweep`: under the default
        lockstep strategy the whole judge group simulates as one union
        design; the per-mutant fallback compiles the shared driver once
        per unique judge RTL and can fan out across a process pool
        (``sim_jobs``).
        """
        pending = [judge for judge in self.rtl_group
                   if judge.syntax_ok
                   and self._judge_key(driver_src, judge)
                   not in self._sim_cache]
        if pending:
            self._sweep_judges(driver_src, pending)

    def validate(self, tb: HybridTestbench) -> ValidationReport:
        scenario_indexes = tuple(index for index, _ in tb.scenarios)
        rows: list[RSRow] = []
        self._prefetch_judges(tb.driver_src)
        for judge in self.rtl_group:
            if not judge.syntax_ok:
                rows.append(RSRow(judge.sample_index, None,
                                  "syntax error"))
                continue
            run = self._judge_records(tb.driver_src, judge)
            retire = self._retire_cache.get(
                self._judge_key(tb.driver_src, judge))
            if not run.ok:
                rows.append(RSRow(judge.sample_index, None,
                                  f"{run.status}: {run.detail[:50]}"))
                continue
            if not scenario_indexes:
                scenario_indexes = tuple(sorted(
                    {record.scenario for record in run.records}))
            report = run_checker(tb.checker_src, self.task.ports,
                                 run.records)
            if not report.ok:
                # A crashing checker is wrong about everything.
                rows.append(RSRow(judge.sample_index,
                                  {s: False for s in scenario_indexes},
                                  report.status, retire_round=retire))
                continue
            cells = {s: True for s in scenario_indexes}
            for scenario, verdict in report.verdicts.items():
                cells[scenario] = verdict.passed
            rows.append(RSRow(judge.sample_index, cells,
                              retire_round=retire))

        if not scenario_indexes:
            # The driver produced no records against any judge RTL.
            return ValidationReport(False, note="driver produced no dump",
                                    matrix=build_matrix((), rows))
        matrix = build_matrix(scenario_indexes, rows)
        return decide(matrix, self.criterion)
