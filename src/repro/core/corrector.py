"""The LLM-based testbench self-corrector (paper Section III-C, Fig. 5).

A two-stage conversation:

- **Stage 1 — reasoning.** The LLM is guided through why / where / how:
  attribute the failing scenarios, locate the related checker code, and
  propose a natural-language fix.
- **Stage 2 — correction.** In the same conversation, the LLM rewrites
  the checker core under formatting rules; the fixed interface is
  completed by the framework.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..llm.base import GenerationIntent, LLMClient, MeteredClient
from ..llm.conversation import Conversation
from ..problems.model import TaskSpec
from ..util import ExtractionError, extract_code_block_checked
from . import prompts
from .artifacts import HybridTestbench
from .validator import ValidationReport


@dataclass
class CorrectionOutcome:
    testbench: HybridTestbench
    reasoning: str
    changed: bool
    extraction_retries: int = 0  # stage-2 replies without a usable block


class Corrector:
    """Runs one two-stage correction conversation."""

    def __init__(self, client: LLMClient | MeteredClient):
        self.client = client

    def correct(self, task: TaskSpec, tb: HybridTestbench,
                report: ValidationReport,
                correction_round: int) -> CorrectionOutcome:
        scenario_text = "\n".join(
            f"{index}. {description}" for index, description in
            tb.scenarios) or "(no scenario definitions recovered)"

        conversation = Conversation(self.client,
                                    prompts.SYSTEM_TESTBENCH)
        stage1 = conversation.ask(
            prompts.corrector_stage1_prompt(
                task.spec_text, scenario_text, report.wrong,
                report.correct, report.uncertain, tb.driver_src,
                tb.checker_src),
            GenerationIntent("correct_reason", task.task_id, {
                "task": task, "checker_src": tb.checker_src,
                "wrong_scenarios": report.wrong,
                "correction_round": correction_round}))

        stage2 = conversation.ask(
            prompts.corrector_stage2_prompt(),
            GenerationIntent("correct_rewrite", task.task_id, {
                "task": task, "checker_src": tb.checker_src,
                "wrong_scenarios": report.wrong,
                "attempt": tb.generation_index,
                "correction_round": correction_round}))

        # A malformed stage-2 reply (no usable python block) is re-asked
        # once under the formatting rules; a second failure keeps the old
        # checker instead of shipping prose or an empty string.
        retries = 0
        try:
            new_checker = extract_code_block_checked(stage2, "python")
        except ExtractionError:
            retries = 1
            stage2 = conversation.ask(
                prompts.corrector_stage2_retry_prompt(),
                GenerationIntent("correct_rewrite", task.task_id, {
                    "task": task, "checker_src": tb.checker_src,
                    "wrong_scenarios": report.wrong,
                    "attempt": tb.generation_index,
                    "correction_round": correction_round, "retry": 1}))
            try:
                new_checker = extract_code_block_checked(stage2, "python")
            except ExtractionError:
                new_checker = tb.checker_src

        changed = new_checker.strip() != tb.checker_src.strip()
        corrected = replace(tb, checker_src=new_checker,
                            origin="corrector",
                            correction_index=correction_round)
        return CorrectionOutcome(corrected, stage1, changed,
                                 extraction_retries=retries)
