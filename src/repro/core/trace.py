"""Replayable correction-session traces.

Every CorrectBench run is a conversation between the pipeline and an
unreliable model, punctuated by simulation verdicts.  This module
records that conversation as a versioned JSONL stream — one JSON object
per line — capturing enough to *re-run* the session offline:

``session``
    one header line: task, model, seed, criterion, budgets, and the
    execution context (engine / lexer) the run used.
``exchange``
    one line per LLM request: intent kind, the full prompt messages, a
    SHA-256 prompt fingerprint, the response text, token usage, and
    wall-clock latency.
``validation``
    one line per validator round: verdict, wrong / correct / uncertain
    scenario sets, the candidate driver and checker sources with their
    hashes, the fault-plan fingerprint (when the backing model exposes
    its ledger via ``introspect``), the number of exchanges consumed so
    far (the mid-trace resume anchor), and per-round timing.
``action``
    one line per Algorithm-1 decision (Correcting / Rebooting / Pass).
``result``
    one trailer line: the final outcome and aggregate usage.

Recording is wired through :class:`~repro.llm.conversation.Conversation`
via a context-variable :class:`TraceSession`, so every pipeline stage
that talks to the model is captured without threading a recorder through
each call site.  The sink is resolved from
:attr:`repro.hdl.context.SimContext.trace_dir` — a plain string knob, so
pool workers (fork *and* spawn) resolve the same directory their parent
configured.

Replaying (:func:`replay_workflow`) rebuilds the workflow from the
header and runs it against a :class:`~repro.llm.replay.ReplayClient`:
the prompts are rebuilt, the code blocks re-parsed, the simulations
re-run — only the model's answers come from the file.  A faithful
pipeline therefore reproduces the recorded verdicts bit for bit, which
is exactly what :class:`ReplayOutcome.matches` checks.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable

from ..llm.replay import prompt_sha

#: Trace schema version; bumped when event shapes change so an old
#: artifact fails loudly instead of replaying garbage.
TRACE_VERSION = 1

EVENT_TYPES = ("session", "exchange", "validation", "action", "result")


class TraceFormatError(ValueError):
    """A trace file does not parse as this build's trace schema."""


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class MemoryTraceSink:
    """Collects events in memory (replay comparison, tests)."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlTraceSink:
    """Appends events to a JSONL file, one object per line.

    The file is opened lazily on the first event — resolving a sink is
    free until a session actually records something — and every line is
    flushed so a crashed run leaves a usable prefix.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._file = None

    def emit(self, event: dict) -> None:
        if self._file is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._file = open(self.path, "w", encoding="utf-8")
        self._file.write(json.dumps(event, sort_keys=True) + "\n")
        self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def resolve_trace_sink(task_id: str, label: str = ""):
    """A sink for one session, or ``None`` when tracing is off.

    Reads :attr:`~repro.hdl.context.SimContext.trace_dir` from the
    active context; ``""`` (the default) disables tracing.  ``label``
    distinguishes sessions of the same task (campaigns pass the method
    name) — the file is ``<task_id>[.<label>].trace.jsonl``.
    """
    from ..hdl.context import current_context
    trace_dir = current_context().trace_dir
    if not trace_dir:
        return None
    stem = f"{task_id}.{label}" if label else task_id
    return JsonlTraceSink(os.path.join(trace_dir,
                                       f"{stem}.trace.jsonl"))


# ----------------------------------------------------------------------
# The recording session
# ----------------------------------------------------------------------
class TraceSession:
    """Accumulates one session's events into a sink.

    The session owns the exchange counter (so recorded indexes are
    dense and ordered even when several pipeline objects share it) and
    the per-round clock.  It is activated with :func:`use_trace_session`
    and found by :func:`current_trace_session` — the hook
    :meth:`repro.llm.conversation.Conversation.ask` records through.
    """

    def __init__(self, sink):
        self.sink = sink
        self.exchange_count = 0
        self.round_count = 0
        self._round_started = time.perf_counter()

    def _emit(self, event_type: str, **fields) -> None:
        self.sink.emit({"type": event_type, **fields})

    def record_header(self, **fields) -> None:
        self._emit("session", version=TRACE_VERSION, **fields)

    def record_exchange(self, request, response,
                        elapsed: float = 0.0) -> None:
        """Record one LLM request/response pair."""
        intent = request.intent
        self._emit(
            "exchange",
            index=self.exchange_count,
            kind=intent.kind,
            task_id=intent.task_id,
            prompt_sha=prompt_sha(request.prompt_text),
            messages=[[m.role, m.content] for m in request.messages],
            response=response.text,
            usage={"input_tokens": response.usage.input_tokens,
                   "output_tokens": response.usage.output_tokens},
            model=response.model_name,
            elapsed_ms=round(elapsed * 1000.0, 3))
        self.exchange_count += 1

    def record_validation(self, testbench, report,
                          fault_fingerprint: str = "") -> None:
        """Record one validator round over ``testbench``."""
        now = time.perf_counter()
        elapsed, self._round_started = now - self._round_started, now
        self.round_count += 1
        self._emit(
            "validation",
            round=self.round_count,
            verdict=bool(report.verdict),
            wrong=list(report.wrong),
            correct=list(report.correct),
            uncertain=list(report.uncertain),
            note=report.note,
            origin=testbench.origin,
            generation_index=testbench.generation_index,
            correction_index=testbench.correction_index,
            driver_sha=prompt_sha(testbench.driver_src),
            checker_sha=prompt_sha(testbench.checker_src),
            driver_src=testbench.driver_src,
            checker_src=testbench.checker_src,
            fault_fingerprint=fault_fingerprint,
            exchanges_so_far=self.exchange_count,
            elapsed_ms=round(elapsed * 1000.0, 3))

    def record_action(self, action: str, testbench, report) -> None:
        self._emit(
            "action",
            action=action,
            generation_index=testbench.generation_index,
            correction_index=testbench.correction_index,
            verdict=bool(report.verdict),
            wrong=list(report.wrong))

    def record_result(self, result) -> None:
        usage = None
        if result.meter is not None:
            total = result.meter.total
            usage = {"input_tokens": total.input_tokens,
                     "output_tokens": total.output_tokens,
                     "requests": result.meter.request_count}
        self._emit(
            "result",
            validated=result.validated,
            gave_up=result.gave_up,
            corrections=result.corrections,
            reboots=result.reboots,
            rounds=self.round_count,
            usage=usage)

    def close(self) -> None:
        self.sink.close()


_active_session: ContextVar[TraceSession | None] = ContextVar(
    "repro_trace_session", default=None)


def current_trace_session() -> TraceSession | None:
    """The recording session in effect, or ``None`` (tracing off)."""
    return _active_session.get()


@contextmanager
def use_trace_session(session: TraceSession | None):
    """Activate ``session`` for the dynamic extent of a block (nests
    and restores like :func:`repro.hdl.context.use_context`)."""
    token = _active_session.set(session)
    try:
        yield session
    finally:
        _active_session.reset(token)


def fault_fingerprint(client, artifact_text: str) -> str:
    """The backing model's fault plan for ``artifact_text``, if it can
    tell us.

    The synthetic model keeps a ledger of everything it rendered
    (:meth:`repro.llm.synthetic.SyntheticLLM.introspect`); for its
    artifacts the fingerprint is the ``repr`` of the fault plan — a
    deterministic label like ``CheckerFaultPlan(misconception='…')``
    that scenario grading groups by.  Metered wrappers are unwrapped;
    clients without a ledger (live APIs, replays) yield ``""``.
    """
    inner = getattr(client, "inner", client)
    introspect = getattr(inner, "introspect", None)
    if introspect is None:
        return ""
    entry = introspect(artifact_text)
    if entry is None:
        return ""
    return f"{entry.scope}:{entry.plan!r}"


# ----------------------------------------------------------------------
# Loading + replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Trace:
    """A parsed trace: the event stream plus typed accessors."""

    events: tuple = ()

    @property
    def header(self) -> dict:
        if not self.events or self.events[0].get("type") != "session":
            raise TraceFormatError("trace does not start with a "
                                   "session header")
        return self.events[0]

    def exchanges(self) -> list[dict]:
        return [e for e in self.events if e.get("type") == "exchange"]

    def validations(self) -> list[dict]:
        return [e for e in self.events if e.get("type") == "validation"]

    def actions(self) -> list[dict]:
        return [e for e in self.events if e.get("type") == "action"]

    def result(self) -> dict | None:
        for event in reversed(self.events):
            if event.get("type") == "result":
                return event
        return None

    def round_verdicts(self) -> list[tuple]:
        """The replay-comparison key: per-round (verdict, wrong set,
        checker hash) triples.  Two runs with equal round verdicts made
        identical decisions on identical artifacts."""
        return [(v["verdict"], tuple(v["wrong"]), v["checker_sha"])
                for v in self.validations()]

    def exchanges_through_round(self, rounds: int) -> int:
        """Exchange count consumed by the first ``rounds`` validation
        rounds — the :class:`~repro.llm.replay.ReplayClient` ``limit``
        that replays exactly that prefix before handing off."""
        validations = self.validations()
        if not 1 <= rounds <= len(validations):
            raise ValueError(
                f"rounds must be in [1, {len(validations)}], "
                f"got {rounds}")
        return validations[rounds - 1]["exchanges_so_far"]


def parse_trace(lines) -> Trace:
    """Parse an iterable of JSONL lines into a :class:`Trace`."""
    events = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"line {number} is not valid JSON: {exc}") from exc
        if not isinstance(event, dict) or \
                event.get("type") not in EVENT_TYPES:
            raise TraceFormatError(
                f"line {number} is not a trace event: {line[:60]!r}")
        events.append(event)
    trace = Trace(tuple(events))
    version = trace.header.get("version")
    if version != TRACE_VERSION:
        raise TraceFormatError(
            f"trace version {version!r} does not match this build's "
            f"{TRACE_VERSION}")
    return trace


def load_trace(path: str) -> Trace:
    """Load a trace recorded by :class:`JsonlTraceSink`."""
    with open(path, encoding="utf-8") as handle:
        return parse_trace(handle)


@dataclass
class ReplayOutcome:
    """A replayed session next to its recording."""

    result: object                  # the replayed WorkflowResult
    recorded: Trace
    replayed: Trace
    handed_off_at: int | None = None  # exchanges replayed before live

    @property
    def matches(self) -> bool:
        """True when the replay reproduced every recorded round
        verdict (over the replayed prefix, for mid-trace resumes)."""
        recorded = self.recorded.round_verdicts()
        replayed = self.replayed.round_verdicts()
        if self.handed_off_at is None:
            return recorded == replayed
        prefix = [v for v in self.recorded.validations()
                  if v["exchanges_so_far"] <= self.handed_off_at]
        return replayed[:len(prefix)] == \
            self.recorded.round_verdicts()[:len(prefix)]

    def diverged_round(self) -> int | None:
        """1-based first round whose verdict differs (None when the
        compared prefixes agree)."""
        recorded = self.recorded.round_verdicts()
        replayed = self.replayed.round_verdicts()
        for index, (a, b) in enumerate(zip(recorded, replayed), start=1):
            if a != b:
                return index
        if self.handed_off_at is None and \
                len(recorded) != len(replayed):
            return min(len(recorded), len(replayed)) + 1
        return None


def replay_workflow(trace: Trace, *, strict: bool = True,
                    rounds: int | None = None,
                    handoff=None,
                    task_lookup: Callable | None = None,
                    ) -> ReplayOutcome:
    """Re-run a recorded session through the real pipeline.

    The workflow is rebuilt from the trace header; the model's answers
    come from the file via a :class:`~repro.llm.replay.ReplayClient`
    (``strict`` controls prompt matching).  ``rounds`` caps the replayed
    prefix at that many validation rounds, after which requests go to
    ``handoff`` — a live client — implementing mid-trace resume.  The
    replay records itself into memory, so the outcome can compare the
    two event streams round by round.
    """
    # Imported here: the workflow imports this module for recording.
    from ..llm.base import MeteredClient, UsageMeter
    from ..llm.replay import ReplayClient
    from .agent import CorrectBenchWorkflow
    from .validator import CRITERIA, DEFAULT_CRITERION

    header = trace.header
    if task_lookup is None:
        from ..problems import get_task
        task_lookup = get_task
    task = task_lookup(header["task_id"])
    criterion = CRITERIA.get(header.get("criterion", ""),
                             DEFAULT_CRITERION)

    limit = None
    if rounds is not None:
        limit = trace.exchanges_through_round(rounds)
    client = ReplayClient.from_trace(trace, strict=strict, limit=limit,
                                     handoff=handoff)
    metered = MeteredClient(client, UsageMeter())
    sink = MemoryTraceSink()
    workflow = CorrectBenchWorkflow(
        metered, task, criterion,
        ic_max=int(header.get("ic_max", 3)),
        ir_max=int(header.get("ir_max", 10)),
        group_size=int(header.get("group_size", 20)),
        trace_sink=sink)
    result = workflow.run()
    return ReplayOutcome(result=result, recorded=trace,
                         replayed=Trace(tuple(sink.events)),
                         handed_off_at=limit)
