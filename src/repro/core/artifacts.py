"""Testbench artifacts produced by the generation pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class HybridTestbench:
    """AutoBench-style hybrid testbench: Verilog driver + Python checker.

    ``scenarios`` holds the (index, description) pairs recovered from the
    driver's scenario comments — the information the validator report and
    the corrector prompt refer to.
    """

    task_id: str
    driver_src: str
    checker_src: str
    scenarios: tuple[tuple[int, str], ...]
    origin: str = "autobench"  # "autobench" | "corrector" | "golden"
    generation_index: int = 0
    correction_index: int = 0

    @property
    def artifact_key(self) -> str:
        """Stable identity of the artifact pair (used by instrumentation)."""
        import hashlib
        h = hashlib.sha256()
        h.update(self.driver_src.encode())
        h.update(b"\x00")
        h.update(self.checker_src.encode())
        return h.hexdigest()[:16]


@dataclass(frozen=True)
class MonolithicTestbench:
    """Baseline artifact: one self-checking Verilog testbench."""

    task_id: str
    source: str
    origin: str = "baseline"

    @property
    def artifact_key(self) -> str:
        import hashlib
        return hashlib.sha256(self.source.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class RtlSample:
    """One imperfect RTL implementation from the validator's judge group."""

    task_id: str
    source: str
    sample_index: int


@dataclass
class GenerationRecord:
    """Bookkeeping of one generator invocation (for workflow history)."""

    attempt: int
    testbench: object
    notes: list[str] = field(default_factory=list)
