"""One facade over the process's caching layers.

The execution stack accumulated caches at every level — token streams
(:mod:`repro.hdl.lexer`), parsed ASTs (:mod:`repro.hdl.parser`), shared
slot programs (:mod:`repro.hdl.compile`), elaboration templates and
cached failures (:mod:`repro.core.simulation`) — each with its own
``clear_*`` / ``*_stats`` pair.  :data:`caches` registers them all
behind two verbs::

    caches.clear()                  # cold start: drop every layer
    caches.clear("design", "pair")  # drop selected layers
    caches.stats()                  # {name: counters} telemetry

The legacy ``clear_simulation_caches`` / ``simulation_cache_stats`` /
``clear_template_caches`` helpers in :mod:`repro.core.simulation`
delegate here, so existing callers and recorded stats shapes are
unchanged.  New caching layers self-register at import time via
:meth:`CacheRegistry.register` instead of growing the helper functions.
"""

from __future__ import annotations

import threading
from typing import Callable


class CacheRegistry:
    """Named ``(clear, stats)`` pairs with bulk and selective access."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[str, tuple[Callable, Callable | None]] = {}

    def register(self, name: str, clear: Callable[[], None],
                 stats: Callable[[], dict] | None = None) -> None:
        """Register a cache layer.  ``clear`` drops it; ``stats`` (if
        any) reports its counters.  Names are unique."""
        with self._lock:
            if name in self._entries:
                raise ValueError(f"cache {name!r} is already registered")
            self._entries[name] = (clear, stats)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def _select(self, names: tuple[str, ...]) -> list[str]:
        with self._lock:
            if not names:
                return list(self._entries)
            unknown = [name for name in names if name not in self._entries]
            if unknown:
                raise KeyError(f"unknown cache(s) {unknown!r}; "
                               f"registered: {tuple(self._entries)}")
            return list(names)

    def clear(self, *names: str) -> None:
        """Drop the named caches (all of them when called bare)."""
        for name in self._select(names):
            self._entries[name][0]()

    def stats(self, *names: str) -> dict:
        """Counters for the named caches (all stats-capable ones when
        called bare), keyed by registered name."""
        out = {}
        for name in self._select(names):
            stats_fn = self._entries[name][1]
            if stats_fn is not None:
                out[name] = stats_fn()
        return out


#: The process-wide registry; layers register themselves at import.
caches = CacheRegistry()
