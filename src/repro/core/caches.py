"""One facade over the process's caching layers, plus the warm-start
snapshot machinery built on top of it.

The execution stack accumulates caches at every level — token streams
(:mod:`repro.hdl.lexer`), parsed ASTs (:mod:`repro.hdl.parser`), shared
slot programs (:mod:`repro.hdl.compile`), elaboration templates and
cached failures (:mod:`repro.core.simulation`) — each with its own
``clear_*`` / ``*_stats`` pair.  :data:`caches` registers them all
behind a few verbs::

    caches.clear()                  # cold start: drop every layer
    caches.clear("design", "pair")  # drop selected layers
    caches.stats()                  # {name: counters} telemetry
    caches.export_snapshot()        # picklable warm-start artifact
    caches.import_snapshot(snap)    # warm a fresh process from it

The legacy ``clear_simulation_caches`` / ``simulation_cache_stats`` /
``clear_template_caches`` helpers in :mod:`repro.core.simulation`
delegate here, so existing callers and recorded stats shapes are
unchanged.  New caching layers self-register at import time via
:meth:`CacheRegistry.register` instead of growing the helper functions.

**Warm-start snapshots.**  Compiled-closure programs cannot cross a
process boundary (closures do not pickle), but everything *below* the
closure layer can: token streams, ASTs, the ``(source, top)`` signatures
of elaborated templates, and recorded elaboration failures.
:class:`CacheSnapshot` bundles exactly those payloads.  A layer opts in
by registering ``export`` / ``import_`` callables; layers without them
(the program cache) are simply absent from snapshots.  Importing a
snapshot *re-derives* the closure-bearing layers — template signatures
are re-elaborated and re-compiled locally — so a spawn-started pool
worker reaches the same steady state a forked worker inherits for free.

**Task scoping.**  Campaign sweeps interleave many tasks; one task's
mutant flood used to evict another task's warm templates from the shared
LRUs.  :func:`use_task_scope` activates a scope label (campaigns use the
task id) and :class:`ScopedLruCache` gives each scope its own LRU
bucket, so eviction pressure stays within the task that caused it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..util import LruCache as LruCache  # re-export: public cache API

#: Snapshot schema version; bumped when payload shapes change so a
#: stale pickled artifact fails loudly instead of half-importing.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class CacheSnapshot:
    """A picklable bundle of warm cache state (everything below the
    closure layer).

    ``payloads`` maps registered layer names to layer-defined payloads;
    the shapes are owned by each layer's ``export`` / ``import_`` pair
    and are opaque here.  Snapshots travel to pool workers through a
    :class:`~concurrent.futures.ProcessPoolExecutor` initializer (see
    :func:`repro.core.simulation.get_sim_pool`), but they are plain
    values — pickling one to disk and importing it in tomorrow's
    process works just as well.

    >>> snap = CacheSnapshot(payloads={"parse": {"module m; endmodule": 1}})
    >>> snap.layers()
    ('parse',)
    >>> snap.counts()
    {'parse': 1}
    >>> bool(CacheSnapshot(payloads={}))
    False
    """

    payloads: dict = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION

    def layers(self) -> tuple[str, ...]:
        """Names of the layers this snapshot carries."""
        return tuple(self.payloads)

    def counts(self) -> dict:
        """Entry count per layer (snapshot telemetry)."""
        return {name: len(payload)
                for name, payload in self.payloads.items()}

    def __bool__(self) -> bool:
        """A snapshot is truthy when any layer has entries."""
        return any(self.counts().values())


@dataclass(frozen=True)
class _Layer:
    clear: Callable[[], None]
    stats: Callable[[], dict] | None = None
    export: Callable[[], object] | None = None
    import_: Callable[[object], object] | None = None


class CacheRegistry:
    """Named cache layers with bulk and selective access.

    Each layer registers a ``clear`` callable, and optionally ``stats``
    (counter telemetry), ``export`` (produce a picklable payload for
    :class:`CacheSnapshot`) and ``import_`` (absorb such a payload).

    >>> registry = CacheRegistry()
    >>> store = {}
    >>> registry.register("demo", clear=store.clear,
    ...                   stats=lambda: {"size": len(store)},
    ...                   export=lambda: dict(store),
    ...                   import_=store.update)
    >>> store["k"] = "v"
    >>> snap = registry.export_snapshot()
    >>> registry.clear("demo")
    >>> registry.stats()
    {'demo': {'size': 0}}
    >>> registry.import_snapshot(snap)
    {'demo': 1}
    >>> store
    {'k': 'v'}
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[str, _Layer] = {}

    def register(self, name: str, clear: Callable[[], None],
                 stats: Callable[[], dict] | None = None,
                 export: Callable[[], object] | None = None,
                 import_: Callable[[object], object] | None = None) -> None:
        """Register a cache layer.  ``clear`` drops it; ``stats`` (if
        any) reports its counters; ``export`` / ``import_`` (if any)
        plug the layer into :class:`CacheSnapshot`.  Names are unique."""
        with self._lock:
            if name in self._entries:
                raise ValueError(f"cache {name!r} is already registered")
            self._entries[name] = _Layer(clear, stats, export, import_)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._entries)

    def _select(self, names: tuple[str, ...]) -> list[str]:
        with self._lock:
            if not names:
                return list(self._entries)
            unknown = [name for name in names if name not in self._entries]
            if unknown:
                raise KeyError(f"unknown cache(s) {unknown!r}; "
                               f"registered: {tuple(self._entries)}")
            return list(names)

    def clear(self, *names: str) -> None:
        """Drop the named caches (all of them when called bare)."""
        for name in self._select(names):
            self._entries[name].clear()

    def stats(self, *names: str) -> dict:
        """Counters for the named caches (all stats-capable ones when
        called bare), keyed by registered name."""
        out = {}
        for name in self._select(names):
            stats_fn = self._entries[name].stats
            if stats_fn is not None:
                out[name] = stats_fn()
        return out

    def export_snapshot(self, *names: str) -> CacheSnapshot:
        """Snapshot the named layers (all export-capable ones when
        called bare) into one picklable :class:`CacheSnapshot`."""
        payloads = {}
        for name in self._select(names):
            export = self._entries[name].export
            if export is not None:
                payloads[name] = export()
        return CacheSnapshot(payloads=payloads)

    def import_snapshot(self, snapshot: CacheSnapshot) -> dict:
        """Absorb ``snapshot`` into this process's caches.

        Returns ``{layer: imported_count}``.  Layers the snapshot
        carries but this process does not know (or that lack an
        ``import_`` hook) are skipped — a snapshot is a warm-up hint,
        never a correctness requirement.  A version mismatch raises:
        silently importing a stale schema could poison every worker.
        """
        if not isinstance(snapshot, CacheSnapshot):
            raise TypeError(f"expected a CacheSnapshot, got {snapshot!r}")
        if snapshot.version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {snapshot.version} does not match "
                f"this build's {SNAPSHOT_VERSION}")
        imported = {}
        for name, payload in snapshot.payloads.items():
            with self._lock:
                layer = self._entries.get(name)
            if layer is None or layer.import_ is None:
                continue
            count = layer.import_(payload)
            imported[name] = int(count) if isinstance(count, int) \
                else len(payload)
        return imported


#: The process-wide registry; layers register themselves at import.
caches = CacheRegistry()


# ----------------------------------------------------------------------
# Snapshot files (warm-start artifacts on disk)
# ----------------------------------------------------------------------
#: File magic for persisted snapshots; bumped with the on-disk format.
_SNAPSHOT_MAGIC = b"repro-cachesnap-1\n"


class SnapshotIntegrityError(RuntimeError):
    """A persisted snapshot file failed verification (bad magic,
    truncated payload, or a SHA-256 mismatch).  Raised instead of ever
    importing suspect cache state."""


def write_snapshot_file(snapshot: CacheSnapshot, path) -> int:
    """Persist ``snapshot`` to ``path``; returns the bytes written.

    The file carries a magic line, the SHA-256 of the pickled payload,
    and the payload itself, and is written via tmp file + atomic
    rename — a crash mid-write leaves the previous snapshot (or no
    file), never a torn one.  :func:`read_snapshot_file` verifies the
    digest before unpickling.
    """
    if not isinstance(snapshot, CacheSnapshot):
        raise TypeError(f"expected a CacheSnapshot, got {snapshot!r}")
    path = Path(path)
    payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest().encode("ascii")
    data = _SNAPSHOT_MAGIC + digest + b"\n" + payload
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return len(data)


def read_snapshot_file(path) -> CacheSnapshot:
    """Load and verify a snapshot persisted by
    :func:`write_snapshot_file`.

    Raises :class:`FileNotFoundError` when ``path`` does not exist and
    :class:`SnapshotIntegrityError` when the file fails verification —
    a warm-start artifact is a hint, but a *corrupt* one must fail
    loudly rather than silently poison every cache layer.
    """
    data = Path(path).read_bytes()
    if not data.startswith(_SNAPSHOT_MAGIC):
        raise SnapshotIntegrityError(
            f"{path} is not a snapshot file (bad magic)")
    rest = data[len(_SNAPSHOT_MAGIC):]
    digest, sep, payload = rest.partition(b"\n")
    if not sep:
        raise SnapshotIntegrityError(f"{path} is truncated")
    if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
        raise SnapshotIntegrityError(
            f"{path} failed its SHA-256 check (tampered or truncated)")
    try:
        snapshot = pickle.loads(payload)
    except Exception as exc:
        raise SnapshotIntegrityError(
            f"{path} payload does not unpickle: {exc}") from exc
    if not isinstance(snapshot, CacheSnapshot):
        raise SnapshotIntegrityError(
            f"{path} does not contain a CacheSnapshot "
            f"(got {type(snapshot).__name__})")
    return snapshot


# ----------------------------------------------------------------------
# Task scoping
# ----------------------------------------------------------------------
_task_scope: ContextVar[str | None] = ContextVar("repro_task_scope",
                                                 default=None)


def current_task_scope() -> str | None:
    """The active cache scope label (``None`` = the shared scope)."""
    return _task_scope.get()


@contextmanager
def use_task_scope(scope: str | None):
    """Activate a cache scope for the dynamic extent of a block.

    Campaign items run under their task id, so each task's template
    working set lives (and is evicted) in its own LRU bucket.  Nests
    and restores like :func:`repro.hdl.context.use_context`.

    >>> with use_task_scope("cmb_and2"):
    ...     current_task_scope()
    'cmb_and2'
    >>> current_task_scope() is None
    True
    """
    token = _task_scope.set(scope)
    try:
        yield scope
    finally:
        _task_scope.reset(token)


def tenant_scope(tenant: str | None,
                 label: str | None = None) -> str | None:
    """Cache-scope name for one tenant (the service front end).

    Tenants get their own template-cache buckets, so one tenant's
    mutant flood evicts its *own* warm templates, never a neighbour's —
    the same isolation campaigns get per task, applied per caller.
    ``label`` subdivides a tenant (the service uses the task id for
    generation jobs).  An empty / ``None`` tenant falls through to the
    plain label (or the shared scope), so anonymous requests behave
    like pre-service callers.

    >>> tenant_scope("acme")
    'tenant/acme'
    >>> tenant_scope("acme", "cmb_and2")
    'tenant/acme/cmb_and2'
    >>> tenant_scope("", "cmb_and2")
    'cmb_and2'
    >>> tenant_scope(None) is None
    True
    """
    if not tenant:
        return label
    if label:
        return f"tenant/{tenant}/{label}"
    return f"tenant/{tenant}"


#: Default outer bound on live scope buckets.  Sized above the 156-task
#: benchmark population so a full-dataset campaign prewarm keeps every
#: task's bucket; the cap only exists so a pathological scope churn
#: (e.g. synthetic task ids in a fuzz loop) cannot grow without bound.
DEFAULT_MAX_SCOPES = 256


class ScopedLruCache:
    """Per-scope :class:`~repro.util.LruCache` buckets.

    Each scope label owns a real ``LruCache`` (one implementation of
    the locking/eviction/race-retention policy, not a re-derivation),
    so a hit refreshes the key within its bucket, an insertion evicts
    that bucket's least recently used entry at capacity, and other
    scopes' entries are never touched.  The buckets themselves form an
    outer LRU capped at ``max_scopes``.

    ``capacity`` may be a callable so the bucket size can follow a live
    knob (``SimContext.template_cache_size``); it is read at insertion
    time, and a shrunk capacity trims a bucket on its next insertion.
    The knob is *per scope*, so the worst-case entry count is
    ``capacity * max_scopes``; ``total_budget`` bounds that product with
    a *global* entry budget (``SimContext.template_cache_budget`` for
    the template caches).  When the total live-entry count crosses the
    budget, whole least-recently-used scope *buckets* are shed — never
    the scope that just inserted — so the cost lands on tasks that have
    gone cold, and a revisited task pays a re-elaboration, not a
    crash.  ``None`` disables the budget.
    """

    def __init__(self, capacity: int | Callable[[], int],
                 max_scopes: int = DEFAULT_MAX_SCOPES,
                 total_budget: int | Callable[[], int] | None = None):
        self._capacity = capacity
        self._max_scopes = max(1, int(max_scopes))
        self._total_budget = total_budget
        self._lock = threading.Lock()
        self._scopes: "OrderedDict[str | None, LruCache]" = OrderedDict()
        # Counters of buckets evicted by scope churn, so stats() stays
        # monotonic even after a scope (and its counts) retires.
        self._retired_hits = 0
        self._retired_misses = 0
        self._shed_scopes = 0

    def _bucket(self, scope) -> LruCache:
        with self._lock:
            bucket = self._scopes.get(scope)
            if bucket is None:
                while len(self._scopes) >= self._max_scopes:
                    _, retired = self._scopes.popitem(last=False)
                    self._retire(retired)
                bucket = self._scopes[scope] = LruCache(self._capacity)
            else:
                self._scopes.move_to_end(scope)
            return bucket

    def _budget(self) -> int | None:
        budget = self._total_budget
        if budget is None:
            return None
        value = budget() if callable(budget) else budget
        return max(1, int(value))

    def _retire(self, bucket: LruCache) -> None:
        stats = bucket.stats()
        self._retired_hits += stats["hits"]
        self._retired_misses += stats["misses"]

    def _enforce_budget(self, scope) -> None:
        budget = self._budget()
        if budget is None:
            return
        with self._lock:
            while len(self._scopes) > 1 and sum(
                    len(bucket)
                    for bucket in self._scopes.values()) > budget:
                retired_scope, retired = next(iter(self._scopes.items()))
                if retired_scope == scope:
                    # The inserting scope is the outer-LRU head only
                    # when every other bucket was already shed; keep it
                    # and let its per-scope capacity bound it.
                    break
                del self._scopes[retired_scope]
                self._retire(retired)
                self._shed_scopes += 1

    def get_or_create(self, key, factory: Callable[[], object]):
        """Return the cached value for ``key`` in the *active* scope,
        computing it (outside the locks) on a miss; racing computations
        keep the first inserted object (see
        :meth:`repro.util.LruCache.get_or_create`)."""
        scope = _task_scope.get()
        value = self._bucket(scope).get_or_create(key, factory)
        self._enforce_budget(scope)
        return value

    def clear(self) -> None:
        """Drop every scope's entries and zero the counters (mirrors
        :meth:`repro.util.LruCache.clear`)."""
        with self._lock:
            self._scopes.clear()
            self._retired_hits = 0
            self._retired_misses = 0
            self._shed_scopes = 0

    def stats(self) -> dict:
        with self._lock:
            per_bucket = [bucket.stats()
                          for bucket in self._scopes.values()]
            return {
                "hits": self._retired_hits
                        + sum(s["hits"] for s in per_bucket),
                "misses": self._retired_misses
                          + sum(s["misses"] for s in per_bucket),
                "size": sum(s["size"] for s in per_bucket),
                "scopes": len(self._scopes),
                "shed_scopes": self._shed_scopes,
            }

    def export_keys(self) -> tuple:
        """``(scope, key)`` pairs for every live entry, least recently
        used first.  Values (elaborated templates) hold compiled
        closures and deliberately never cross a process boundary — the
        importer re-derives them from the keys."""
        with self._lock:
            return tuple((scope, key)
                         for scope, bucket in self._scopes.items()
                         for key in bucket.export())
