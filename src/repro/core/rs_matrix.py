"""The RTL-Scenario (RS) matrix (paper Section III-B, Fig. 4).

Cell (i, j) records whether the testbench reported scenario j as
*correct* (green, ``True``) when judging imperfect RTL i.  Rows of
syntax-broken or unsimulatable RTLs are discarded (``None``); rows where
the checker itself crashed are fully red — a checker that cannot run is
wrong about every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence


@dataclass(frozen=True)
class RSRow:
    sample_index: int
    cells: Optional[dict]  # scenario index -> bool; None = discarded row
    note: str = ""
    # Dump-record index where this judge RTL first diverged from the
    # golden lane in the mutant sweep (None = never diverged, or the
    # row's run produced no comparable records).  Diagnostic metadata;
    # the validation criteria do not read it.
    retire_round: Optional[int] = None

    @property
    def valid(self) -> bool:
        return self.cells is not None


@dataclass
class RSMatrix:
    scenario_indexes: tuple[int, ...]
    rows: tuple[RSRow, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    @property
    def valid_rows(self) -> tuple[RSRow, ...]:
        return tuple(row for row in self.rows if row.valid)

    @property
    def n_valid(self) -> int:
        return len(self.valid_rows)

    def column_wrong_fraction(self, scenario: int) -> float | None:
        """Fraction of valid rows that flag ``scenario`` wrong."""
        votes = [not row.cells.get(scenario, True)
                 for row in self.valid_rows if scenario in row.cells]
        if not votes:
            return None
        return sum(votes) / len(votes)

    def fully_green_row_fraction(self) -> float:
        """Fraction of valid rows that pass every scenario."""
        rows = self.valid_rows
        if not rows:
            return 0.0
        green = sum(1 for row in rows if all(row.cells.values()))
        return green / len(rows)

    # ------------------------------------------------------------------
    def render_ascii(self) -> str:
        """Fig. 4-style rendering: '#' = correct (green), 'X' = wrong."""
        header = "RTL\\Scn |" + "".join(
            f"{s:>3}" for s in self.scenario_indexes)
        lines = [header, "-" * len(header)]
        for row in self.rows:
            if not row.valid:
                cells = "  -" * len(self.scenario_indexes)
                lines.append(f"{row.sample_index + 1:>7} |{cells}   "
                             f"(discarded: {row.note})")
                continue
            cells = "".join(
                "  #" if row.cells.get(s, True) else "  X"
                for s in self.scenario_indexes)
            lines.append(f"{row.sample_index + 1:>7} |{cells}")
        return "\n".join(lines)


def build_matrix(scenario_indexes: Sequence[int],
                 rows: Sequence[RSRow]) -> RSMatrix:
    return RSMatrix(tuple(scenario_indexes), tuple(rows))
